#include "cache/cache.hh"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "mem/request_pool.hh"
#include "obs/chrome_trace.hh"
#include "obs/registry.hh"
#include "sim/verify.hh"

namespace tacsim {

Cache::Cache(CacheParams params, EventQueue &eq, MemDevice *lower,
             std::unique_ptr<ReplPolicy> policy,
             std::unique_ptr<Prefetcher> prefetcher)
    : params_(std::move(params)),
      eq_(eq),
      lower_(lower),
      policy_(std::move(policy)),
      prefetcher_(std::move(prefetcher)),
      indexer_(params_.sets, params_.setShift),
      blocks_(static_cast<std::size_t>(params_.sets) * params_.ways),
      mshrs_(params_.mshrs)
{
    if (prefetcher_)
        prefetcher_->setIssuer(this);
    if (params_.profileRecall)
        profiler_ = std::make_unique<RecallProfiler>(params_.sets);
    if (params_.arb.cores) {
        TACSIM_CHECK(params_.arb.smt > 0 &&
                     "arbitration needs a nonzero smt divisor");
        arbMshrsByCore_.assign(params_.arb.cores, 0);
        arbTokens_.assign(params_.arb.cores, 0);
    }
}

void
Cache::resetStats()
{
    stats_.reset();
    if (profiler_)
        profiler_->reset();
    policy_->resetStats();
}

void
Cache::registerMetrics(obs::Registry &registry, const std::string &prefix)
{
    static const char *const kCatSlug[kNumBlockCats] = {
        "nonreplay", "replay", "pt_leaf", "pt_upper", "prefetch",
        "writeback",
    };
    for (std::size_t c = 0; c < kNumBlockCats; ++c) {
        const std::string cat = std::string(".") + kCatSlug[c];
        registry.addCounter(prefix + ".accesses" + cat,
                            &stats_.accesses[c]);
        registry.addCounter(prefix + ".hits" + cat, &stats_.hits[c]);
        registry.addCounter(prefix + ".misses" + cat, &stats_.misses[c]);
    }
    registry.addCounter(prefix + ".fills", &stats_.fills);
    registry.addCounter(prefix + ".bypassed_fills",
                        &stats_.bypassedFills);
    registry.addCounter(prefix + ".writebacks_out",
                        &stats_.writebacksOut);
    registry.addCounter(prefix + ".mshr.merges", &stats_.mshrMerges);
    registry.addCounter(prefix + ".mshr.full_events",
                        &stats_.mshrFullEvents);
    registry.addCounter(prefix + ".pf.issued", &stats_.prefetchIssued);
    registry.addCounter(prefix + ".pf.dropped", &stats_.prefetchDropped);
    registry.addCounter(prefix + ".pf.useful", &stats_.prefetchUseful);
    registry.addCounter(prefix + ".pf.late", &stats_.prefetchLate);
    registry.addCounter(prefix + ".atp.issued", &stats_.atpIssued);
    registry.addCounter(prefix + ".atp.useful", &stats_.atpUseful);
    registry.addCounter(prefix + ".tempo.useful", &stats_.tempoUseful);
    registry.addCounter(prefix + ".ideal_grants", &stats_.idealGrants);
    registry.addCounter(prefix + ".arb.mshr_deferred",
                        &stats_.arbMshrDeferred);
    registry.addCounter(prefix + ".arb.bw_deferred",
                        &stats_.arbBwDeferred);
    if (profiler_) {
        registry.addHistogram(prefix + ".recall.translation",
                              &profiler_->translationHist());
        registry.addHistogram(prefix + ".recall.replay",
                              &profiler_->replayHist());
        registry.addHistogram(prefix + ".recall.data",
                              &profiler_->nonReplayHist());
    }
    policy_->registerMetrics(registry, prefix + ".repl");
    if (prefetcher_)
        prefetcher_->registerMetrics(registry, prefix + ".pf");
    registry.addResetHook([this] { resetStats(); });
}

void
Cache::setTracer(obs::ChromeTracer *tracer, std::uint32_t track)
{
    tracer_ = tracer;
    track_ = track;
    if (tracer_)
        mshrNameId_ = tracer_->intern("mshr_occupancy");
}

int
Cache::findWay(std::uint32_t set, Addr blockAddr) const
{
    const std::size_t base = static_cast<std::size_t>(set) * params_.ways;
    for (std::uint32_t w = 0; w < params_.ways; ++w) {
        if (blocks_[base + w].valid && blocks_[base + w].tag == blockAddr)
            return static_cast<int>(w);
    }
    return -1;
}

bool
Cache::contains(Addr paddr) const
{
    return findWay(setIndex(paddr), blockAlign(paddr)) >= 0;
}

void
Cache::access(const MemRequestPtr &req)
{
    if (req->type == ReqType::Writeback) {
        // Writebacks update in place on hit; on miss they continue down
        // without allocating (non-inclusive write-no-allocate for WBs).
        const Addr blockAddr = req->blockAddr();
        const std::uint32_t set = setIndex(blockAddr);
        const int way = findWay(set, blockAddr);
        if (way >= 0) {
            blocks_[static_cast<std::size_t>(set) * params_.ways + way]
                .dirty = true;
            req->complete(eq_.now(), params_.level);
        } else if (lower_) {
            lower_->access(req);
        } else {
            req->complete(eq_.now(), RespSource::DRAM);
        }
        return;
    }

    if (arbBwDefer(req))
        return;

    MemRequestPtr keep = req;
    eq_.schedule(params_.latency, [this, keep] { lookup(keep); });
}

std::uint32_t
Cache::arbOwnerOf(const MemRequestPtr &req) const
{
    // Prefetch children carry no issuing context (cpu 0 by default) —
    // charging them all to core 0 would be arbitrary, and prefetches
    // are already throttled by the demand MSHR reserve. Exempt them.
    if (req->type == ReqType::Prefetch)
        return kNoOwner;
    const std::uint32_t core = req->cpu / params_.arb.smt;
    return core < params_.arb.cores ? core : params_.arb.cores - 1;
}

bool
Cache::arbBwDefer(const MemRequestPtr &req)
{
    if (!params_.arb.bwOn())
        return false;
    const std::uint32_t owner = arbOwnerOf(req);
    if (owner == kNoOwner)
        return false;

    const Cycle window = eq_.now() / params_.arb.bwWindow;
    if (window != arbWindow_) {
        arbWindow_ = window;
        std::fill(arbTokens_.begin(), arbTokens_.end(), 0u);
    }
    if (arbTokens_[owner] >= params_.arb.bwTokens) {
        // Over budget: retry at the next window boundary. Deferred
        // requests re-enter access() in their original event order, so
        // the first bwTokens of them win the fresh bucket — fair and
        // deterministic.
        ++stats_.arbBwDeferred;
        const Cycle retryAt = (window + 1) * params_.arb.bwWindow;
        MemRequestPtr keep = req;
        eq_.schedule(retryAt - eq_.now(), [this, keep] { access(keep); });
        return true;
    }
    ++arbTokens_[owner];
    return false;
}

void
Cache::lookup(const MemRequestPtr &req, bool countStats)
{
    const Addr blockAddr = req->blockAddr();
    const std::uint32_t set = setIndex(blockAddr);
    const int way = findWay(set, blockAddr);
    AccessInfo ai = accessInfoFor(*req);

    const auto cat = static_cast<std::size_t>(ai.cat);
    if (countStats) {
        ++stats_.accesses[cat];
        if (profiler_)
            profiler_->onAccess(set, blockAddr, ai.cat);
    }

    if (way >= 0) {
        if (countStats)
            ++stats_.hits[cat];
        BlockMeta &b =
            blocks_[static_cast<std::size_t>(set) * params_.ways + way];
        if (req->type == ReqType::Store)
            b.dirty = true;

        // Prefetch-accuracy accounting: first touch of a prefetched
        // block by real traffic counts it useful.
        if (b.prefetchOrigin != PrefetchOrigin::None && !b.reused &&
            req->type != ReqType::Prefetch) {
            ++stats_.prefetchUseful;
            if (b.prefetchOrigin == PrefetchOrigin::Atp)
                ++stats_.atpUseful;
            else if (b.prefetchOrigin == PrefetchOrigin::Tempo)
                ++stats_.tempoUseful;
        }

        if (req->type != ReqType::Prefetch) {
            b.reused = true;
            policy_->onHit(set, static_cast<std::uint32_t>(way), ai);
        }

        if (countStats && prefetcher_ && req->isDemand())
            prefetcher_->onAccess(ai, true);

        // ATP (paper §IV): a leaf-translation hit at this level means
        // the replay load's physical line is now known — prefetch it.
        if (params_.atp && req->isLeafTranslation() &&
            req->replayBlockPaddr != 0) {
            ++stats_.atpIssued;
            issuePrefetch(req->replayBlockPaddr, PrefetchOrigin::Atp,
                          req->ip);
        }

        req->complete(eq_.now(), params_.level);
        return;
    }

    // Miss.
    if (countStats) {
        ++stats_.misses[cat];
        if (prefetcher_ && req->isDemand())
            prefetcher_->onAccess(ai, false);
    }

    // Ideal modes (paper Fig. 2): grant the hit at this level's latency
    // but still send the miss through the MSHRs so bandwidth is charged.
    // A re-entering request already received its grant on first entry
    // (complete() is idempotent anyway).
    const bool idealHit = countStats &&
        ((params_.idealTranslations && req->isLeafTranslation()) ||
         (params_.idealReplays && req->isDemand() && req->isReplay));
    if (idealHit) {
        ++stats_.idealGrants;
        req->complete(eq_.now(),
                      params_.level == RespSource::LLC
                          ? RespSource::IdealLLC
                          : RespSource::IdealL2C);
    }

    handleMiss(req, ai);
}

void
Cache::handleMiss(const MemRequestPtr &req, const AccessInfo &ai)
{
    const Addr blockAddr = req->blockAddr();
    if (MshrEntry *hit = mshrs_.find(blockAddr)) {
        MshrEntry &e = *hit;
        ++stats_.mshrMerges;
        if (req->type != ReqType::Prefetch) {
            // A demand merging into a prefetch-initiated MSHR is a late
            // prefetch: partially hidden latency. The fill is no longer
            // a prefetch fill, so drop the origin — otherwise the data
            // prefetcher would still train on it via onPrefetchFill and
            // pollute its accuracy feedback.
            if (e.prefetchOnly) {
                ++stats_.prefetchLate;
                e.origin = PrefetchOrigin::None;
            }
            e.prefetchOnly = false;
            e.demandWaiting = true;
            // Reclassify the eventual fill with the demand's identity so
            // replacement sees replay/translation flags, not Prefetch.
            if (e.fillInfo.cat == BlockCat::Prefetch)
                e.fillInfo = ai;
        }
        if (req->type == ReqType::Store)
            e.makeDirty = true;
        e.waiters.push_back(req);
        return;
    }

    const bool isPrefetch = req->type == ReqType::Prefetch;
    const std::uint32_t owner =
        params_.arb.cores ? arbOwnerOf(req) : kNoOwner;

    // Per-core MSHR quota (shared-LLC arbitration): a core at its cap
    // parks further demands in pending_ even while slots remain free
    // for other cores. Quota release (handleFill) re-drains the queue.
    if (owner != kNoOwner && params_.arb.quotaOn() &&
        arbMshrsByCore_[owner] >= params_.arb.mshrQuota) {
        ++stats_.arbMshrDeferred;
        pending_.push_back(req);
        return;
    }

    const std::uint32_t freeMshrs =
        params_.mshrs > mshrs_.size()
            ? params_.mshrs - static_cast<std::uint32_t>(mshrs_.size())
            : 0;
    if (freeMshrs == 0 ||
        (isPrefetch && freeMshrs <= params_.mshrReserveForDemand)) {
        if (isPrefetch) {
            ++stats_.prefetchDropped;
            req->complete(eq_.now(), params_.level);
            return;
        }
        ++stats_.mshrFullEvents;
        pending_.push_back(req);
        return;
    }

    MshrEntry e;
    e.fillInfo = ai;
    e.prefetchOnly = isPrefetch;
    e.makeDirty = req->type == ReqType::Store;
    e.origin = req->prefetchOrigin;
    e.waiters.push_back(req);
    e.demandWaiting = !isPrefetch;
    if (owner != kNoOwner) {
        e.owner = owner;
        ++arbMshrsByCore_[owner];
    }
    mshrs_.insert(blockAddr, std::move(e));
    if (tracer_)
        tracer_->counter(track_, mshrNameId_, eq_.now(),
                         double(mshrs_.size()));
    forwardMiss(blockAddr);
}

void
Cache::forwardMiss(Addr blockAddr)
{
    const MshrEntry *entryPtr = mshrs_.find(blockAddr);
    TACSIM_CHECK(entryPtr && "forwardMiss without MSHR");
    const MshrEntry &entry = *entryPtr;
    // Build the child request that travels to the lower level. It
    // carries the classification flags so lower caches can apply their
    // own translation-conscious decisions (and trigger ATP/TEMPO).
    MemRequestPtr child = makeRequest();
    const MemRequestPtr &primary =
        entry.waiters.empty() ? nullptr : entry.waiters.front();
    child->paddr = blockAddr;
    if (primary) {
        child->vaddr = primary->vaddr;
        child->ip = primary->ip;
        child->type = primary->type == ReqType::Store
            ? ReqType::Load // stores fetch ownership as reads below L1
            : primary->type;
        child->ptLevel = primary->ptLevel;
        child->leafPte = primary->leafPte;
        child->pageSize = primary->pageSize;
        child->isReplay = primary->isReplay;
        child->replayBlockPaddr = primary->replayBlockPaddr;
        child->prefetchOrigin = primary->prefetchOrigin;
        child->cpu = primary->cpu;
    } else {
        child->type = ReqType::Prefetch;
    }
    child->issuedAt = eq_.now();
    child->onComplete = [this, blockAddr](MemRequest &resp) {
        handleFill(blockAddr, resp.source);
    };

    if (lower_) {
        lower_->access(child);
    } else {
        // Memoryless bottom (unit tests): respond immediately.
        child->complete(eq_.now(), RespSource::DRAM);
    }
}

void
Cache::handleFill(Addr blockAddr, RespSource src)
{
    MshrEntry *slot = mshrs_.find(blockAddr);
    TACSIM_CHECK(slot != nullptr && "fill without MSHR");
    MshrEntry entry = std::move(*slot);
    mshrs_.erase(blockAddr);
    if (entry.owner != kNoOwner) {
        TACSIM_DCHECK(arbMshrsByCore_[entry.owner] > 0 &&
                      "arbitration count underflow on fill");
        --arbMshrsByCore_[entry.owner];
    }
    if (tracer_)
        tracer_->counter(track_, mshrNameId_, eq_.now(),
                         double(mshrs_.size()));

    ++stats_.fills;
    const std::uint32_t set = setIndex(blockAddr);
    if (policy_->bypassFill(set, entry.fillInfo)) {
        ++stats_.bypassedFills;
    } else {
        installBlock(blockAddr, entry.fillInfo, entry.makeDirty);
        if (prefetcher_ && entry.origin == PrefetchOrigin::DataPrefetcher)
            prefetcher_->onPrefetchFill(blockAddr);
    }

    for (auto &w : entry.waiters)
        w->complete(eq_.now(), src);

    drainPending();
}

void
Cache::installBlock(Addr blockAddr, const AccessInfo &ai, bool dirty)
{
    const std::uint32_t set = setIndex(blockAddr);
    const std::size_t base = static_cast<std::size_t>(set) * params_.ways;

    // Prefer an invalid way.
    std::int32_t way = -1;
    for (std::uint32_t w = 0; w < params_.ways; ++w) {
        if (!blocks_[base + w].valid) {
            way = static_cast<std::int32_t>(w);
            break;
        }
    }
    if (way < 0) {
        way = static_cast<std::int32_t>(
            policy_->victim(set, ai, &blocks_[base]));
        evictWay(set, static_cast<std::uint32_t>(way));
    }

    BlockMeta &b = blocks_[base + static_cast<std::uint32_t>(way)];
    b.tag = blockAddr;
    b.valid = true;
    b.dirty = dirty || ai.cat == BlockCat::Writeback;
    b.reused = false;
    b.cat = ai.cat;
    b.prefetchOrigin =
        ai.cat == BlockCat::Prefetch ? ai.origin : PrefetchOrigin::None;
    b.fillIp = ai.ip;
    policy_->onFill(set, static_cast<std::uint32_t>(way), ai);
}

void
Cache::evictWay(std::uint32_t set, std::uint32_t way)
{
    BlockMeta &b =
        blocks_[static_cast<std::size_t>(set) * params_.ways + way];
    if (!b.valid)
        return;
    policy_->onEvict(set, way, b);
    if (profiler_)
        profiler_->onEvict(set, b.tag, b.cat);
    if (b.dirty && lower_) {
        ++stats_.writebacksOut;
        MemRequestPtr wb = makeRequest();
        wb->paddr = b.tag;
        wb->type = ReqType::Writeback;
        wb->issuedAt = eq_.now();
        lower_->access(wb);
    }
    // Clear all metadata, not just the valid bit: a replay/translation
    // category or prefetch origin surviving eviction would silently
    // mis-train the next policy decision in this frame.
    b.valid = false;
    b.dirty = false;
    b.reused = false;
    b.cat = BlockCat::NonReplay;
    b.prefetchOrigin = PrefetchOrigin::None;
}

void
Cache::drainPending()
{
    // One pass over the queue as it stood at entry. With the per-core
    // MSHR quota on, a drained request can land right back in pending_
    // (its core still at cap) while MSHRs sit free — an unbounded
    // while-loop would spin on it forever. One pass reaches the
    // fixpoint: nothing a requeued request is waiting on changes until
    // the next fill.
    std::size_t budget = pending_.size();
    while (budget-- > 0 && !pending_.empty() &&
           mshrs_.size() < params_.mshrs) {
        MemRequestPtr req = pending_.front();
        pending_.pop_front();
        // Re-enter through lookup, not handleMiss: the fill that freed
        // this MSHR may have installed the very line this request wants
        // (two demands to one block can both sit in pending_), and
        // re-injecting at handleMiss would re-fetch and re-install it.
        lookup(req, /*countStats=*/false);
    }
}

void
Cache::issuePrefetch(Addr paddr, PrefetchOrigin origin, Addr ip)
{
    const Addr blockAddr = blockAlign(paddr);
    // Cheap duplicate filters: already resident or already in flight.
    if (contains(blockAddr) || mshrs_.contains(blockAddr))
        return;

    ++stats_.prefetchIssued;
    MemRequestPtr req = makeRequest();
    req->paddr = blockAddr;
    req->ip = ip;
    req->type = ReqType::Prefetch;
    req->prefetchOrigin = origin;
    req->issuedAt = eq_.now();
    // Prefetches skip the front-side latency; they start at the MSHRs.
    AccessInfo ai = accessInfoFor(*req);
    ++stats_.accesses[static_cast<std::size_t>(BlockCat::Prefetch)];
    ++stats_.misses[static_cast<std::size_t>(BlockCat::Prefetch)];
    handleMiss(req, ai);
}

namespace {

std::string
dumpBlock(const BlockMeta &b)
{
    std::ostringstream os;
    os << std::hex << "tag=0x" << b.tag << std::dec
       << " valid=" << b.valid << " dirty=" << b.dirty
       << " reused=" << b.reused
       << " cat=" << static_cast<int>(b.cat)
       << " origin=" << static_cast<int>(b.prefetchOrigin)
       << std::hex << " fillIp=0x" << b.fillIp;
    return os.str();
}

} // namespace

void
Cache::checkInvariants() const
{
    using verify::InvariantViolation;
    const std::string &who = params_.name;

    // Per-class accounting: every counted access is either a hit or a
    // miss, never both, never neither.
    for (std::size_t cat = 0; cat < kNumBlockCats; ++cat) {
        if (stats_.accesses[cat] != stats_.hits[cat] + stats_.misses[cat]) {
            std::ostringstream os;
            os << "class " << cat << ": accesses=" << stats_.accesses[cat]
               << " != hits=" << stats_.hits[cat]
               << " + misses=" << stats_.misses[cat];
            throw InvariantViolation(who, "stats-accounting", os.str());
        }
    }

    for (std::uint32_t set = 0; set < params_.sets; ++set) {
        const std::size_t base =
            static_cast<std::size_t>(set) * params_.ways;
        for (std::uint32_t w = 0; w < params_.ways; ++w) {
            const BlockMeta &b = blocks_[base + w];
            if (!b.valid) {
                // Eviction must wipe metadata; a replay category or
                // prefetch origin surviving here would poison the next
                // occupant's policy training.
                if (b.dirty || b.reused ||
                    b.cat != BlockCat::NonReplay ||
                    b.prefetchOrigin != PrefetchOrigin::None)
                    throw InvariantViolation(who, "stale-meta",
                                             dumpBlock(b), set, w);
                continue;
            }
            if (b.tag != blockAlign(b.tag))
                throw InvariantViolation(who, "tag-align", dumpBlock(b),
                                         set, w);
            if (setIndex(b.tag) != set)
                throw InvariantViolation(who, "tag-set-mismatch",
                                         dumpBlock(b), set, w);
            if (b.prefetchOrigin != PrefetchOrigin::None &&
                b.cat != BlockCat::Prefetch)
                throw InvariantViolation(who, "prefetch-origin",
                                         dumpBlock(b), set, w);
            for (std::uint32_t w2 = w + 1; w2 < params_.ways; ++w2) {
                const BlockMeta &other = blocks_[base + w2];
                if (other.valid && other.tag == b.tag) {
                    std::ostringstream os;
                    os << "ways " << w << " and " << w2
                       << " both hold " << dumpBlock(b);
                    throw InvariantViolation(who, "duplicate-tag",
                                             os.str(), set, w2);
                }
            }
        }
    }

    // MSHRs.
    if (mshrs_.size() > params_.mshrs) {
        std::ostringstream os;
        os << mshrs_.size() << " entries live, " << params_.mshrs
           << " provisioned";
        throw InvariantViolation(who, "mshr-overflow", os.str());
    }
    mshrs_.forEach([&](Addr addr, const MshrEntry &e) {
        const std::uint32_t set = setIndex(addr);
        std::ostringstream ctx;
        ctx << std::hex << "mshr 0x" << addr << std::dec
            << " waiters=" << e.waiters.size()
            << " demandWaiting=" << e.demandWaiting
            << " prefetchOnly=" << e.prefetchOnly
            << " makeDirty=" << e.makeDirty
            << " origin=" << static_cast<int>(e.origin);

        if (addr != blockAlign(addr))
            throw InvariantViolation(who, "mshr-align", ctx.str(), set);
        if (findWay(set, addr) >= 0)
            throw InvariantViolation(who, "mshr-resident", ctx.str(), set);
        if (e.waiters.empty())
            throw InvariantViolation(who, "mshr-waiters", ctx.str(), set);

        bool anyDemand = false;
        bool anyStore = false;
        // tacsim-lint: allow(hot-path-container) checkInvariants-only duplicate detection, never on the simulated path
        std::unordered_set<const MemRequest *> unique;
        for (const auto &waiter : e.waiters) {
            if (!unique.insert(waiter.get()).second)
                throw InvariantViolation(who, "mshr-duplicate-waiter",
                                         ctx.str(), set);
            if (waiter->blockAddr() != addr)
                throw InvariantViolation(who, "mshr-waiter-addr",
                                         ctx.str(), set);
            anyDemand |= waiter->type != ReqType::Prefetch;
            anyStore |= waiter->type == ReqType::Store;
        }
        if (e.demandWaiting != anyDemand || e.prefetchOnly == anyDemand)
            throw InvariantViolation(who, "mshr-demand-flag", ctx.str(),
                                     set);
        if (e.makeDirty != anyStore)
            throw InvariantViolation(who, "mshr-dirty-flag", ctx.str(),
                                     set);
        // Origin bookkeeping: a fill a demand is waiting on must not
        // train the prefetcher (PR 1's prefetch-origin leak); a pure
        // prefetch must know who issued it.
        if (e.demandWaiting && e.origin != PrefetchOrigin::None)
            throw InvariantViolation(who, "mshr-origin", ctx.str(), set);
        if (e.prefetchOnly && e.origin == PrefetchOrigin::None)
            throw InvariantViolation(who, "mshr-origin", ctx.str(), set);
        if (e.fillInfo.blockAddr != addr)
            throw InvariantViolation(who, "mshr-fill-addr", ctx.str(),
                                     set);
        if (e.prefetchOnly != (e.fillInfo.cat == BlockCat::Prefetch))
            throw InvariantViolation(who, "mshr-fill-class", ctx.str(),
                                     set);
    });

    // Requests only queue while every MSHR is taken — or, with the
    // per-core quota on, while their owning core is at its cap — and
    // only demands (prefetches are dropped, not queued).
    for (const auto &req : pending_) {
        if (req->type == ReqType::Prefetch)
            throw InvariantViolation(who, "pending-class",
                                     "prefetch parked in pending queue");
        if (mshrs_.size() == params_.mshrs)
            continue;
        if (params_.arb.quotaOn()) {
            const std::uint32_t owner = arbOwnerOf(req);
            if (owner != kNoOwner &&
                arbMshrsByCore_[owner] >= params_.arb.mshrQuota)
                continue;
        }
        std::ostringstream os;
        os << pending_.size() << " queued with only " << mshrs_.size()
           << "/" << params_.mshrs << " MSHRs in use and no quota "
           << "explanation";
        throw InvariantViolation(who, "pending-backlog", os.str());
    }

    // Arbitration bookkeeping: the per-core counters must equal the
    // live MSHR ownership they cache, never exceed the quota, and the
    // token bucket can never record more spend than one window grants.
    if (params_.arb.cores) {
        std::vector<std::uint32_t> live(params_.arb.cores, 0);
        mshrs_.forEach([&](Addr addr, const MshrEntry &e) {
            if (e.owner == kNoOwner)
                return;
            if (e.owner >= params_.arb.cores) {
                std::ostringstream os;
                os << std::hex << "mshr 0x" << addr << std::dec
                   << " owned by core " << e.owner << " but only "
                   << params_.arb.cores << " cores arbitrate";
                throw InvariantViolation(who, "arb-owner-range",
                                         os.str());
            }
            ++live[e.owner];
        });
        for (std::uint32_t c = 0; c < params_.arb.cores; ++c) {
            if (live[c] != arbMshrsByCore_[c]) {
                std::ostringstream os;
                os << "core " << c << " owns " << live[c]
                   << " live MSHRs but the arbiter counter says "
                   << arbMshrsByCore_[c];
                throw InvariantViolation(who, "arb-mshr-quota", os.str());
            }
            if (params_.arb.mshrQuota &&
                arbMshrsByCore_[c] > params_.arb.mshrQuota) {
                std::ostringstream os;
                os << "core " << c << " holds " << arbMshrsByCore_[c]
                   << " MSHRs over its quota of "
                   << params_.arb.mshrQuota;
                throw InvariantViolation(who, "arb-mshr-quota", os.str());
            }
            const std::uint32_t granted =
                params_.arb.bwOn() ? params_.arb.bwTokens : 0;
            if (arbTokens_[c] > granted) {
                std::ostringstream os;
                os << "core " << c << " spent " << arbTokens_[c]
                   << " bandwidth tokens of " << granted
                   << " granted per window";
                throw InvariantViolation(who, "arb-token-conservation",
                                         os.str());
            }
        }
    }

    policy_->checkInvariants(who);
}

void
Cache::saveState(SerialWriter &w) const
{
    if (prefetcher_)
        throw std::runtime_error("checkpoint: cache '" + params_.name +
                                 "' has a prefetcher (unsupported)");
    if (profiler_)
        throw std::runtime_error("checkpoint: cache '" + params_.name +
                                 "' has a recall profiler (unsupported)");
    if (!mshrs_.empty() || !pending_.empty())
        throw std::runtime_error(
            "checkpoint: cache '" + params_.name +
            "' has outstanding misses — quiesce before saving");
    w.putU64(blocks_.size());
    for (const BlockMeta &b : blocks_) {
        w.putU64(b.tag);
        w.putBool(b.valid);
        w.putBool(b.dirty);
        w.putBool(b.reused);
        w.putU8(static_cast<std::uint8_t>(b.cat));
        w.putU8(static_cast<std::uint8_t>(b.prefetchOrigin));
        w.putU64(b.fillIp);
    }
    policy_->saveState(w);
    w.putU64(arbMshrsByCore_.size());
    for (std::uint32_t v : arbMshrsByCore_)
        w.putU32(v);
    for (std::uint32_t v : arbTokens_)
        w.putU32(v);
    w.putU64(arbWindow_);
}

void
Cache::loadState(SerialReader &r)
{
    if (prefetcher_)
        throw std::runtime_error("checkpoint: cache '" + params_.name +
                                 "' has a prefetcher (unsupported)");
    if (profiler_)
        throw std::runtime_error("checkpoint: cache '" + params_.name +
                                 "' has a recall profiler (unsupported)");
    if (!mshrs_.empty() || !pending_.empty())
        throw std::runtime_error(
            "checkpoint: cache '" + params_.name +
            "' has outstanding misses — cannot restore");
    if (r.getU64() != blocks_.size())
        throw std::runtime_error("checkpoint: cache '" + params_.name +
                                 "' geometry mismatch");
    for (BlockMeta &b : blocks_) {
        b.tag = r.getU64();
        b.valid = r.getBool();
        b.dirty = r.getBool();
        b.reused = r.getBool();
        const std::uint8_t cat = r.getU8();
        if (cat >= kNumBlockCats)
            throw std::runtime_error("checkpoint: cache '" + params_.name +
                                     "' block has a bad category");
        b.cat = static_cast<BlockCat>(cat);
        b.prefetchOrigin = static_cast<PrefetchOrigin>(r.getU8());
        b.fillIp = r.getU64();
    }
    policy_->loadState(r);
    if (r.getU64() != arbMshrsByCore_.size())
        throw std::runtime_error("checkpoint: cache '" + params_.name +
                                 "' arbitration geometry mismatch");
    for (auto &v : arbMshrsByCore_)
        v = r.getU32();
    for (auto &v : arbTokens_)
        v = r.getU32();
    arbWindow_ = r.getU64();
}

} // namespace tacsim
