/**
 * @file
 * Address-interleaved router in front of a sliced shared LLC.
 *
 * Block addresses map to slices by low block-number bits (slice =
 * blockNumber mod slices), the standard static NUCA interleave, so
 * consecutive blocks stripe across slices. The optional latency model
 * charges hopLatency cycles per ring hop between the requesting core's
 * ring stop (core mod slices) and the home slice, on the request path
 * only (the response share is folded into the same charge). Requests
 * with no attributed core (writebacks, prefetch children) pay the
 * worst-case distance so the model stays conservative and simple.
 */

#ifndef TACSIM_CACHE_SLICE_ROUTER_HH
#define TACSIM_CACHE_SLICE_ROUTER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/event_queue.hh"
#include "mem/request.hh"

namespace tacsim {

class Cache;

namespace obs {
class Registry;
} // namespace obs

/** Counters for the slice interconnect. */
struct SliceRouterStats
{
    std::uint64_t routed = 0;    ///< requests forwarded to a slice
    std::uint64_t hopCycles = 0; ///< total hop latency charged

    void reset() { *this = SliceRouterStats{}; }
};

class SliceRouter : public MemDevice
{
  public:
    /**
     * @param slices home slices in interleave order (power of two).
     * @param smt hardware threads per core (request cpu -> core).
     * @param hopLatency cycles per ring hop; 0 forwards immediately.
     */
    SliceRouter(std::string name, EventQueue &eq,
                std::vector<Cache *> slices, std::uint32_t smt,
                Cycle hopLatency);

    void access(const MemRequestPtr &req) override;
    const std::string &name() const override { return name_; }

    /** Home slice for @p paddr (low block-number bits). */
    std::uint32_t sliceOf(Addr paddr) const;
    /** Ring distance from core @p core to slice @p slice. */
    std::uint32_t hops(std::uint32_t core, std::uint32_t slice) const;

    const SliceRouterStats &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }
    void registerMetrics(obs::Registry &registry,
                         const std::string &prefix);

  private:
    std::string name_;
    EventQueue &eq_;
    std::vector<Cache *> slices_;
    std::uint32_t sliceMask_;
    std::uint32_t smt_;
    Cycle hopLatency_;
    SliceRouterStats stats_;
};

} // namespace tacsim

#endif // TACSIM_CACHE_SLICE_ROUTER_HH
