/**
 * @file
 * Set-associative, non-blocking cache level with MSHRs, pluggable
 * replacement policy and prefetcher, ideal-hit modes (paper Fig. 2) and
 * the ATP trigger point (paper §IV).
 *
 * The cache is a MemDevice: requests arrive via access(), tag lookup is
 * charged the hit latency, misses allocate an MSHR and forward a child
 * request to the lower level, and fills install the block and complete
 * every merged waiter. Translation (PTW) traffic shares the arrays with
 * data, eight PTEs per 64B block, exactly as §II-A describes.
 */

#ifndef TACSIM_CACHE_CACHE_HH
#define TACSIM_CACHE_CACHE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "cache/block.hh"
#include "cache/recall_profiler.hh"
#include "cache/repl/policy.hh"
#include "common/addr_map.hh"
#include "common/event_queue.hh"
#include "common/set_index.hh"
#include "common/types.hh"
#include "mem/request.hh"
#include "prefetch/prefetcher.hh"

namespace tacsim {

namespace obs {
class ChromeTracer;
class Registry;
} // namespace obs

/** Aggregate counters for one cache level, split by traffic class. */
struct CacheStats
{
    std::uint64_t accesses[kNumBlockCats] = {};
    std::uint64_t hits[kNumBlockCats] = {};
    std::uint64_t misses[kNumBlockCats] = {};

    std::uint64_t fills = 0;
    std::uint64_t bypassedFills = 0;
    std::uint64_t writebacksOut = 0;
    std::uint64_t mshrMerges = 0;
    std::uint64_t mshrFullEvents = 0;

    std::uint64_t prefetchIssued = 0;
    std::uint64_t prefetchDropped = 0;
    std::uint64_t prefetchUseful = 0;
    std::uint64_t prefetchLate = 0; ///< demand merged into prefetch MSHR
    std::uint64_t atpIssued = 0;
    std::uint64_t atpUseful = 0;
    std::uint64_t tempoUseful = 0;
    std::uint64_t idealGrants = 0;

    /** Demands parked in pending_ because their core hit its MSHR
     *  quota (arbitration on; distinct from mshrFullEvents). */
    std::uint64_t arbMshrDeferred = 0;
    /** Lookups pushed to the next window by the bandwidth bucket. */
    std::uint64_t arbBwDeferred = 0;

    std::uint64_t
    at(const std::uint64_t (&a)[kNumBlockCats], BlockCat c) const
    {
        return a[static_cast<std::size_t>(c)];
    }

    std::uint64_t demandAccesses() const
    {
        return at(accesses, BlockCat::NonReplay) +
            at(accesses, BlockCat::Replay);
    }
    std::uint64_t demandMisses() const
    {
        return at(misses, BlockCat::NonReplay) +
            at(misses, BlockCat::Replay);
    }
    std::uint64_t translationAccesses() const
    {
        return at(accesses, BlockCat::PtLeaf) +
            at(accesses, BlockCat::PtUpper);
    }
    std::uint64_t translationMisses() const
    {
        return at(misses, BlockCat::PtLeaf) +
            at(misses, BlockCat::PtUpper);
    }

    void reset() { *this = CacheStats{}; }

    /** Accumulate @p o into this (LLC-slice aggregation). */
    void
    add(const CacheStats &o)
    {
        for (std::size_t c = 0; c < kNumBlockCats; ++c) {
            accesses[c] += o.accesses[c];
            hits[c] += o.hits[c];
            misses[c] += o.misses[c];
        }
        fills += o.fills;
        bypassedFills += o.bypassedFills;
        writebacksOut += o.writebacksOut;
        mshrMerges += o.mshrMerges;
        mshrFullEvents += o.mshrFullEvents;
        prefetchIssued += o.prefetchIssued;
        prefetchDropped += o.prefetchDropped;
        prefetchUseful += o.prefetchUseful;
        prefetchLate += o.prefetchLate;
        atpIssued += o.atpIssued;
        atpUseful += o.atpUseful;
        tempoUseful += o.tempoUseful;
        idealGrants += o.idealGrants;
        arbMshrDeferred += o.arbMshrDeferred;
        arbBwDeferred += o.arbBwDeferred;
    }
};

/**
 * Per-core fairness arbitration at a shared cache (the LLC). cores == 0
 * disables everything (private levels). With arbitration on, a request's
 * owning core is cpu / smt; unattributed traffic (self-issued
 * prefetches, writebacks) is exempt. Two mechanisms, both deterministic:
 *
 *  - MSHR quota: a core may hold at most mshrQuota live MSHRs; excess
 *    demands park in the pending queue until one of the core's fills
 *    returns (prefetch children are already throttled by the demand
 *    reserve, so quota applies to demands only).
 *  - Bandwidth tokens: each core gets bwTokens demand lookups per
 *    bwWindow cycles; an over-budget lookup is rescheduled at the next
 *    window boundary (arrival order preserved by the event queue).
 */
struct CacheArbParams
{
    std::uint32_t cores = 0; ///< sharers; 0 = arbitration off
    std::uint32_t smt = 1;   ///< hardware threads per core (cpu mapping)
    std::uint32_t mshrQuota = 0; ///< live MSHRs per core; 0 = no cap
    std::uint32_t bwTokens = 0;  ///< lookups per core per window; 0 = off
    Cycle bwWindow = 64;

    bool
    quotaOn() const
    {
        return cores > 0 && mshrQuota > 0;
    }
    bool
    bwOn() const
    {
        return cores > 0 && bwTokens > 0;
    }
};

/** Construction parameters for a cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::uint32_t sets = 64;
    std::uint32_t ways = 8;
    Cycle latency = 4;          ///< tag+data access latency
    std::uint32_t mshrs = 16;
    std::uint32_t mshrReserveForDemand = 2; ///< prefetches may not take these
    RespSource level = RespSource::L1D;     ///< for response attribution

    /** Low address bits below the set-index field. An LLC slice in a
     *  2^k-way interleave indexes above the slice-select bits
     *  (kBlockBits + k), so sibling slices never alias sets. */
    unsigned setShift = kBlockBits;

    CacheArbParams arb; ///< per-core fairness (shared LLC only)

    bool idealTranslations = false; ///< Fig. 2 ideal mode for leaf PTEs
    bool idealReplays = false;      ///< Fig. 2 ideal mode for replay loads
    bool atp = false;               ///< enable the ATP trigger here
    bool profileRecall = false;     ///< attach a RecallProfiler
};

class Cache : public MemDevice, public PrefetchIssuer
{
  public:
    Cache(CacheParams params, EventQueue &eq, MemDevice *lower,
          std::unique_ptr<ReplPolicy> policy,
          std::unique_ptr<Prefetcher> prefetcher = nullptr);

    // MemDevice
    void access(const MemRequestPtr &req) override;
    const std::string &name() const override { return params_.name; }

    // PrefetchIssuer
    void issuePrefetch(Addr paddr, PrefetchOrigin origin,
                       Addr ip) override;

    /** True if the block containing @p paddr is resident. */
    bool contains(Addr paddr) const;

    const CacheStats &stats() const { return stats_; }

    /** Zero every statistic this level owns, including the recall
     *  profiler and the policy's stat counters. */
    void resetStats();

    /**
     * Register every counter/histogram under "@p prefix." and hand the
     * replacement policy ("@p prefix.repl") and prefetcher
     * ("@p prefix.pf") their sub-prefixes. Also installs the reset hook
     * so Registry::resetAll() covers this level.
     */
    void registerMetrics(obs::Registry &registry,
                         const std::string &prefix);

    /** Attach a Chrome tracer; MSHR occupancy is emitted as counter
     *  events on @p track. Pass nullptr to detach. */
    void setTracer(obs::ChromeTracer *tracer, std::uint32_t track);

    const CacheParams &params() const { return params_; }
    ReplPolicy &policy() { return *policy_; }
    Prefetcher *prefetcher() { return prefetcher_.get(); }
    MemDevice *lower() { return lower_; }

    const RecallProfiler *recallProfiler() const { return profiler_.get(); }

    void setAtpEnabled(bool on) { params_.atp = on; }
    void setIdealTranslations(bool on) { params_.idealTranslations = on; }
    void setIdealReplays(bool on) { params_.idealReplays = on; }

    std::uint32_t setIndex(Addr paddr) const
    {
        return indexer_.index(paddr);
    }

    /** Block metadata for tests/inspection; way may be invalid. */
    const BlockMeta &
    blockAt(std::uint32_t set, std::uint32_t way) const
    {
        return blocks_[static_cast<std::size_t>(set) * params_.ways + way];
    }

    /** Mutable block metadata — verifier tests use this to seed
     *  deliberate corruption (duplicate tags, stale eviction metadata). */
    BlockMeta &
    blockAt(std::uint32_t set, std::uint32_t way)
    {
        return blocks_[static_cast<std::size_t>(set) * params_.ways + way];
    }

    /**
     * Walk tags, MSHRs, the pending queue, per-class statistics, the
     * arbitration counters and the replacement policy's state, throwing
     * verify::InvariantViolation on the first structural inconsistency.
     * Intended to be called at quiescent points (between run-loop
     * iterations, at drain).
     */
    void checkInvariants() const;

    /** Mutable arbitration counters — verifier tests use these to seed
     *  deliberate corruption (counter drift, token over-spend). */
    std::uint32_t &
    arbMshrCountFor(std::uint32_t core)
    {
        return arbMshrsByCore_[core];
    }
    std::uint32_t &
    arbTokensFor(std::uint32_t core)
    {
        return arbTokens_[core];
    }

    static constexpr std::uint32_t kNoOwner = 0xffffffffu;

    /**
     * Checkpoint the array contents, replacement-policy training state
     * and arbitration counters (tacsim-ckpt-v1). Only legal when no miss
     * is outstanding (post-quiesce): MSHRs and the pending queue are
     * never serialized. Attached prefetchers and recall profilers are
     * unsupported and make save/load throw.
     */
    void saveState(SerialWriter &w) const;
    void loadState(SerialReader &r);

  private:
    struct MshrEntry
    {
        std::vector<MemRequestPtr> waiters;
        AccessInfo fillInfo;      ///< classification of the eventual fill
        bool demandWaiting = false;
        bool prefetchOnly = true;
        bool makeDirty = false;   ///< a store is waiting on this line
        PrefetchOrigin origin = PrefetchOrigin::None;
        /** Arbitration owner (core index); kNoOwner for unattributed
         *  traffic or when arbitration is off. */
        std::uint32_t owner = kNoOwner;
    };

    /** @p countStats is false when a request re-enters lookup after
     *  waiting in pending_: its access/miss was counted on first entry. */
    void lookup(const MemRequestPtr &req, bool countStats = true);
    void handleMiss(const MemRequestPtr &req, const AccessInfo &ai);
    /** Arbitration owner for @p req (kNoOwner when exempt). */
    std::uint32_t arbOwnerOf(const MemRequestPtr &req) const;
    /** True when the bandwidth bucket deferred @p req to the next
     *  window (the retry is already scheduled). */
    bool arbBwDefer(const MemRequestPtr &req);
    void forwardMiss(Addr blockAddr);
    void handleFill(Addr blockAddr, RespSource src);
    void installBlock(Addr blockAddr, const AccessInfo &ai, bool dirty);
    void evictWay(std::uint32_t set, std::uint32_t way);
    void drainPending();

    int findWay(std::uint32_t set, Addr blockAddr) const;

    CacheParams params_;
    EventQueue &eq_;
    MemDevice *lower_;
    std::unique_ptr<ReplPolicy> policy_;
    std::unique_ptr<Prefetcher> prefetcher_;
    std::unique_ptr<RecallProfiler> profiler_;

    obs::ChromeTracer *tracer_ = nullptr; ///< null = tracing disabled
    std::uint32_t track_ = 0;
    std::uint32_t mshrNameId_ = 0;

    SetIndexer indexer_;
    std::vector<BlockMeta> blocks_;
    AddrMap<MshrEntry> mshrs_;  ///< keyed by block address
    std::deque<MemRequestPtr> pending_; ///< waiting for a free MSHR
    CacheStats stats_;

    // Arbitration state (sized to arb.cores; empty when off).
    std::vector<std::uint32_t> arbMshrsByCore_; ///< live MSHRs per core
    std::vector<std::uint32_t> arbTokens_; ///< lookups spent this window
    Cycle arbWindow_ = 0; ///< window index arbTokens_ covers
};

} // namespace tacsim

#endif // TACSIM_CACHE_CACHE_HH
