/**
 * @file
 * tacsim-cache: maintenance CLI for the persistent result cache
 * (serve::ResultCache, format tacsim-cache-v1).
 *
 *   info    totals: entry count, payload bytes, directory
 *   ls      one line per entry, most recently used first
 *   verify  CRC-check every entry, drop corrupt ones, adopt orphans
 *   gc      evict least-recently-used entries down to a byte budget
 *
 * All commands operate on a cache directory directly — run them
 * against a live daemon's directory only between requests (the index
 * rewrite is atomic, but gc under a writer is a race you lose).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "serve/result_cache.hh"

namespace {

int
usage(int code)
{
    std::fprintf(
        stderr,
        "usage: tacsim-cache <command> --dir DIR [options]\n"
        "\n"
        "  info   --dir DIR            entry count and payload bytes\n"
        "  ls     --dir DIR            entries, most recently used first\n"
        "  verify --dir DIR            CRC-check all entries; drop\n"
        "                              corrupt ones, adopt orphans;\n"
        "                              exit 1 when anything was dropped\n"
        "  gc     --dir DIR --max-bytes N\n"
        "                              evict LRU entries above N bytes\n");
    return code;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string command, dir;
    std::uint64_t maxBytes = 0;
    bool haveMaxBytes = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool hasValue = i + 1 < argc;
        if (arg == "--help" || arg == "-h") {
            return usage(0);
        } else if (arg == "--dir" && hasValue) {
            dir = argv[++i];
        } else if (arg == "--max-bytes" && hasValue) {
            char *end = nullptr;
            maxBytes = std::strtoull(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0') {
                std::fprintf(stderr, "tacsim-cache: bad --max-bytes\n");
                return 2;
            }
            haveMaxBytes = true;
        } else if (command.empty() && arg[0] != '-') {
            command = arg;
        } else {
            std::fprintf(stderr, "tacsim-cache: unknown option '%s'\n",
                         arg.c_str());
            return usage(2);
        }
    }
    if (command.empty() || dir.empty())
        return usage(2);

    try {
        tacsim::serve::ResultCache cache(dir);
        if (command == "info") {
            std::printf("dir %s\nentries %zu\nbytes %llu\n",
                        cache.dir().c_str(), cache.entries(),
                        static_cast<unsigned long long>(
                            cache.totalBytes()));
            return 0;
        }
        if (command == "ls") {
            for (const auto &info : cache.list())
                std::printf("%s %llu %llu\n", info.pointKey.c_str(),
                            static_cast<unsigned long long>(info.bytes),
                            static_cast<unsigned long long>(info.seq));
            return 0;
        }
        if (command == "verify") {
            const std::size_t dropped = cache.verify();
            std::printf("verified %zu entries, dropped %zu\n",
                        cache.entries(), dropped);
            return dropped == 0 ? 0 : 1;
        }
        if (command == "gc") {
            if (!haveMaxBytes) {
                std::fprintf(stderr,
                             "tacsim-cache: gc needs --max-bytes\n");
                return 2;
            }
            const std::size_t evicted = cache.gcToBytes(maxBytes);
            std::printf("evicted %zu entries, %llu bytes remain\n",
                        evicted,
                        static_cast<unsigned long long>(
                            cache.totalBytes()));
            return 0;
        }
        std::fprintf(stderr, "tacsim-cache: unknown command '%s'\n",
                     command.c_str());
        return usage(2);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "tacsim-cache: %s\n", e.what());
        return 1;
    }
}
