/**
 * @file
 * tacsim-lint CLI — the domain-aware static analyzer gate.
 *
 * Usage:
 *   tacsim-lint [options] PATH...
 *     PATH            file, or directory scanned recursively for
 *                     .cc/.hh sources (default: src/ under --root)
 *   --root DIR        repo root; findings are reported relative to it
 *                     and directory-scoped checks key off the relative
 *                     path (default: current directory)
 *   --baseline FILE   grandfathered findings ("<check> <path>:<line>"
 *                     per line, '#' comments); stale entries fail
 *   --write-baseline FILE  write the current active findings as a new
 *                     baseline and exit 0
 *   --checks a,b,c    run only these checks
 *   --json            emit the tacsim-lint-v1 JSON report on stdout
 *   --list-checks     print the check catalog and exit
 *
 * Exit status: 0 clean (suppressed/baselined findings allowed), 1 on
 * any active finding, malformed suppression, or stale baseline entry,
 * 2 on usage/IO errors.
 */

#include "lint/lint.hh"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace {

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::ostringstream ss;
    ss << is.rdbuf();
    out = ss.str();
    return true;
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--root DIR] [--baseline FILE] "
                 "[--write-baseline FILE]\n"
                 "       [--checks a,b,c] [--json] [--list-checks] "
                 "PATH...\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tacsim::lint;

    std::string root = ".";
    std::string baselinePath;
    std::string writeBaselinePath;
    bool json = false;
    bool listChecks = false;
    Options opts;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](std::string &dst) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: %s needs a value\n",
                             arg.c_str());
                return false;
            }
            dst = argv[++i];
            return true;
        };
        if (arg == "--root") {
            if (!value(root))
                return 2;
        } else if (arg == "--baseline") {
            if (!value(baselinePath))
                return 2;
        } else if (arg == "--write-baseline") {
            if (!value(writeBaselinePath))
                return 2;
        } else if (arg == "--checks") {
            std::string list;
            if (!value(list))
                return 2;
            std::size_t start = 0;
            while (start <= list.size()) {
                std::size_t comma = list.find(',', start);
                if (comma == std::string::npos)
                    comma = list.size();
                if (comma > start)
                    opts.enabledChecks.push_back(
                        list.substr(start, comma - start));
                start = comma + 1;
            }
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--list-checks") {
            listChecks = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "error: unknown option %s\n",
                         arg.c_str());
            return usage(argv[0]);
        } else {
            paths.push_back(arg);
        }
    }

    if (listChecks) {
        for (const auto &check : createChecks())
            std::printf("%-26s %s\n", check->id(), check->description());
        return 0;
    }

    if (paths.empty())
        paths.push_back(root + "/src");

    std::vector<std::string> baseline;
    if (!baselinePath.empty()) {
        std::string body;
        if (!readFile(baselinePath, body)) {
            std::fprintf(stderr, "error: cannot read baseline %s\n",
                         baselinePath.c_str());
            return 2;
        }
        baseline = parseBaseline(body);
    }

    std::vector<std::pair<std::string, std::string>> files;
    try {
        for (const auto &[rel, abs] : collectFiles(root, paths)) {
            std::string content;
            if (!readFile(abs, content)) {
                std::fprintf(stderr, "error: cannot read %s\n",
                             abs.c_str());
                return 2;
            }
            files.emplace_back(rel, std::move(content));
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
    if (files.empty()) {
        std::fprintf(stderr, "error: no .cc/.hh files found under the "
                             "given paths\n");
        return 2;
    }

    const Report report = runLint(files, opts, baseline);

    if (!writeBaselinePath.empty()) {
        std::ofstream os(writeBaselinePath, std::ios::binary);
        if (!os) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         writeBaselinePath.c_str());
            return 2;
        }
        os << "# tacsim-lint baseline: grandfathered findings, one\n"
              "# '<check> <path>:<line>' per line. The goal state is an\n"
              "# empty file — fix the finding or add an inline\n"
              "# 'tacsim-lint: allow(<check>) <reason>' instead of\n"
              "# adding entries.\n";
        for (const Finding &f : report.active)
            os << baselineKey(f) << "\n";
        std::fprintf(stderr, "tacsim-lint: wrote %zu entries to %s\n",
                     report.active.size(), writeBaselinePath.c_str());
        return 0;
    }

    if (json)
        std::fputs(toJson(report).c_str(), stdout);
    else
        std::fputs(toText(report).c_str(), stdout);
    return report.clean() ? 0 : 1;
}
