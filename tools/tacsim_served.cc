/**
 * @file
 * tacsim-served: the simulation-as-a-service daemon (serve::Server).
 *
 * Binds a loopback HTTP port, accepts JSON job specs, simulates them on
 * a bounded worker pool, and answers repeat submissions from the
 * persistent content-addressed result cache. SIGTERM/SIGINT drain
 * gracefully: in-flight jobs finish, queued ones fail cleanly, the
 * cache index is already durable.
 *
 * The bound port is printed to stdout as "port <n>" (and flushed)
 * before the accept loop starts, so scripts can bind port 0 and scrape
 * the real port.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/server.hh"

namespace {

int
usage(int code)
{
    std::fprintf(
        stderr,
        "usage: tacsim-served [options]\n"
        "\n"
        "  --port N            TCP port (default 0 = ephemeral; the\n"
        "                      bound port is printed as 'port N')\n"
        "  --host ADDR         bind address (default 127.0.0.1)\n"
        "  --cache-dir DIR     persistent result cache directory\n"
        "                      (default: none — results live only in\n"
        "                      the job table)\n"
        "  --max-cache-bytes N LRU-evict the cache above N payload\n"
        "                      bytes (default 0 = unbounded)\n"
        "  --workers N         simulation threads (default 0 =\n"
        "                      min(hardware, 4))\n"
        "\n"
        "Endpoints: POST /jobs, GET /jobs/<id>, GET /results/<key>,\n"
        "GET /healthz, GET /metrics. SIGTERM/SIGINT shut down\n"
        "gracefully.\n");
    return code;
}

tacsim::serve::Server *gServer = nullptr;

void
onSignal(int)
{
    if (gServer != nullptr)
        gServer->requestStop(); // async-signal-safe by contract
}

bool
parseU64(const char *s, std::uint64_t &out)
{
    char *end = nullptr;
    out = std::strtoull(s, &end, 10);
    return end != s && *end == '\0';
}

} // namespace

int
main(int argc, char **argv)
{
    tacsim::serve::ServerConfig cfg;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool hasValue = i + 1 < argc;
        if (arg == "--help" || arg == "-h") {
            return usage(0);
        } else if (arg == "--port" && hasValue) {
            std::uint64_t v = 0;
            if (!parseU64(argv[++i], v) || v > 65535) {
                std::fprintf(stderr, "tacsim-served: bad --port\n");
                return 2;
            }
            cfg.port = static_cast<std::uint16_t>(v);
        } else if (arg == "--host" && hasValue) {
            cfg.host = argv[++i];
        } else if (arg == "--cache-dir" && hasValue) {
            cfg.cacheDir = argv[++i];
        } else if (arg == "--max-cache-bytes" && hasValue) {
            if (!parseU64(argv[++i], cfg.maxCacheBytes)) {
                std::fprintf(stderr,
                             "tacsim-served: bad --max-cache-bytes\n");
                return 2;
            }
        } else if (arg == "--workers" && hasValue) {
            std::uint64_t v = 0;
            if (!parseU64(argv[++i], v) || v > 1024) {
                std::fprintf(stderr, "tacsim-served: bad --workers\n");
                return 2;
            }
            cfg.workers = static_cast<unsigned>(v);
        } else {
            std::fprintf(stderr, "tacsim-served: unknown option '%s'\n",
                         arg.c_str());
            return usage(2);
        }
    }

    try {
        tacsim::serve::Server server(cfg);
        server.start();
        gServer = &server;
        std::signal(SIGTERM, onSignal);
        std::signal(SIGINT, onSignal);

        std::printf("port %u\n", static_cast<unsigned>(server.port()));
        std::fflush(stdout);
        std::fprintf(stderr,
                     "tacsim-served: listening on %s:%u%s%s\n",
                     cfg.host.c_str(),
                     static_cast<unsigned>(server.port()),
                     cfg.cacheDir.empty() ? "" : ", cache ",
                     cfg.cacheDir.c_str());

        server.wait();
        gServer = nullptr;
        std::fprintf(stderr, "tacsim-served: drained, exiting\n");
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "tacsim-served: %s\n", e.what());
        return 1;
    }
}
