/**
 * @file
 * The tacsim-lint check registry. Each check walks a file's token
 * stream (comments and literals already stripped by the lexer) and
 * either reports findings directly or accumulates cross-file state
 * resolved in finalize() — the stats-coverage and range-for checks
 * need to pair declarations in headers with uses in sources.
 *
 * Adding a check: subclass Check, implement id()/description()/scan()
 * (and finalize() if cross-file), append it in createChecks(), add a
 * seeded-violation fixture under tests/lint/ and a case to
 * tests/test_lint.cc, and document it in README.md's check catalog.
 */

#include "lint/lint.hh"

#include <algorithm>
#include <string>

namespace tacsim {
namespace lint {

namespace {

bool
pathStartsWith(const std::string &path, const std::string &prefix)
{
    if (path.size() < prefix.size() ||
        path.compare(0, prefix.size(), prefix) != 0)
        return false;
    return path.size() == prefix.size() || path[prefix.size()] == '/';
}

bool
isIdent(const Token &t, const char *text)
{
    return t.kind == Tok::Ident && t.text == text;
}

bool
isPunct(const Token &t, const char *text)
{
    return t.kind == Tok::Punct && t.text == text;
}

Finding
makeFinding(const char *check, const FileUnit &f, const Token &t,
            std::string message)
{
    Finding out;
    out.check = check;
    out.path = f.path;
    out.line = t.line;
    out.col = t.col;
    out.message = std::move(message);
    return out;
}

/**
 * Skip a balanced template-argument list starting at tokens[i] == "<".
 * Returns the index just past the matching close; ">>" closes two
 * levels. Gives up (returns @p i) if the list never closes — the
 * caller then treats the "<" as a comparison.
 */
std::size_t
skipTemplateArgs(const std::vector<Token> &toks, std::size_t i)
{
    int depth = 0;
    for (std::size_t j = i; j < toks.size(); ++j) {
        const Token &t = toks[j];
        if (t.kind != Tok::Punct)
            continue;
        if (t.text == "<")
            ++depth;
        else if (t.text == ">")
            --depth;
        else if (t.text == ">>")
            depth -= 2;
        else if (t.text == ";" || t.text == "{")
            return i; // statement ended: not a template argument list
        if (depth <= 0)
            return j + 1;
    }
    return i;
}

// ------------------------------------------- magic-page-constant --

class MagicPageConstant : public Check
{
  public:
    const char *
    id() const override
    {
        return "magic-page-constant";
    }
    const char *
    description() const override
    {
        return "hardcoded 4K-page geometry (4096, 0xfff, 0x1ff, "
               "shift-by-12) outside common/types.hh; use the PageSize "
               "vocabulary (kPageSize, pageBytes, pageShift, ptIndex)";
    }

    void
    scan(const FileUnit &f, Project &proj,
         std::vector<Finding> &out) override
    {
        for (const std::string &exempt : proj.opts->pageMathExempt)
            if (f.path == exempt)
                return;
        const auto &toks = f.tokens;
        for (std::size_t i = 0; i < toks.size(); ++i) {
            const Token &t = toks[i];
            if (t.kind == Tok::Number && t.valueValid) {
                if (t.value == 4096)
                    out.push_back(makeFinding(
                        id(), f, t,
                        "integer literal " + t.text +
                            " is the 4K page size; use kPageSize / "
                            "pageBytes(ps) from common/types.hh"));
                else if (t.value == 4095)
                    out.push_back(makeFinding(
                        id(), f, t,
                        "integer literal " + t.text +
                            " is the 4K page-offset mask; use "
                            "pageOffset()/pageAlign() from "
                            "common/types.hh"));
                else if (t.value == 511)
                    out.push_back(makeFinding(
                        id(), f, t,
                        "integer literal " + t.text +
                            " is the page-table index mask; use "
                            "kPtEntries - 1 / ptIndex() from "
                            "common/types.hh"));
            }
            if (t.kind == Tok::Punct &&
                (t.text == "<<" || t.text == ">>") &&
                i + 1 < toks.size()) {
                const Token &rhs = toks[i + 1];
                if (rhs.kind == Tok::Number && rhs.valueValid &&
                    rhs.value == 12)
                    out.push_back(makeFinding(
                        id(), f, t,
                        "shift by literal 12 is 4K page math; use "
                            "pageNumber()/pageShift() from "
                            "common/types.hh"));
            }
        }
    }
};

// ----------------------------------------- nondeterminism-hazard --

class NondeterminismHazard : public Check
{
  public:
    const char *
    id() const override
    {
        return "nondeterminism-hazard";
    }
    const char *
    description() const override
    {
        return "wall-clock / libc randomness / std random engines / "
               "range-for over unordered containers: anything whose "
               "result can differ between identical runs; use "
               "common/rng.hh and ordered traversal";
    }

    void
    scan(const FileUnit &f, Project &proj,
         std::vector<Finding> &out) override
    {
        const auto &toks = f.tokens;
        for (std::size_t i = 0; i < toks.size(); ++i) {
            const Token &t = toks[i];
            if (t.kind != Tok::Ident)
                continue;
            scanBannedName(f, toks, i, out);
            scanUnorderedDecl(toks, i, proj);
            scanRangeFor(f, toks, i, proj);
        }
    }

    void
    finalize(const Project &proj, std::vector<Finding> &out) override
    {
        for (const Project::RangeForSite &site : proj.rangeFors) {
            if (proj.unorderedNames.count(site.ident) == 0)
                continue;
            Finding fi;
            fi.check = id();
            fi.path = site.path;
            fi.line = site.line;
            fi.col = site.col;
            fi.message = "range-for over unordered container '" +
                site.ident +
                "': iteration order is hash/insertion dependent and "
                "must not reach stats or event order; iterate sorted "
                "keys or an ordered structure";
            out.push_back(std::move(fi));
        }
    }

  private:
    static bool
    bannedTypeName(const std::string &s)
    {
        // Names that are hazardous wherever they appear (types whose
        // very use implies wall-clock or non-seeded randomness).
        static const char *const kNames[] = {
            "random_device",     "mt19937",      "mt19937_64",
            "minstd_rand",       "minstd_rand0", "default_random_engine",
            "system_clock",      "steady_clock", "high_resolution_clock",
            "knuth_b",           "ranlux24",     "ranlux48",
        };
        return std::find(std::begin(kNames), std::end(kNames), s) !=
            std::end(kNames);
    }

    static bool
    bannedCallName(const std::string &s)
    {
        // Names flagged only in call position (short common words).
        static const char *const kNames[] = {
            "rand",      "srand",        "rand_r",   "drand48",
            "lrand48",   "mrand48",      "time",     "clock",
            "gettimeofday", "clock_gettime", "timespec_get",
            "localtime", "gmtime",       "strftime", "ctime",
        };
        return std::find(std::begin(kNames), std::end(kNames), s) !=
            std::end(kNames);
    }

    void
    scanBannedName(const FileUnit &f, const std::vector<Token> &toks,
                   std::size_t i, std::vector<Finding> &out)
    {
        const Token &t = toks[i];
        if (bannedTypeName(t.text)) {
            out.push_back(makeFinding(
                id(), f, t,
                "'" + t.text +
                    "' leaks wall-clock or unseeded randomness into a "
                    "simulation built to be bit-reproducible; use "
                    "tacsim::Rng (common/rng.hh) or simulated time"));
            return;
        }
        if (!bannedCallName(t.text))
            return;
        // Call position only: followed by '(' and not a member access
        // (x.time(...)); qualified calls are flagged only for std::.
        if (i + 1 >= toks.size() || !isPunct(toks[i + 1], "("))
            return;
        if (i > 0 && (isPunct(toks[i - 1], ".") ||
                      isPunct(toks[i - 1], "->")))
            return;
        if (i > 0 && isPunct(toks[i - 1], "::")) {
            const bool stdQualified = i >= 2 &&
                (isIdent(toks[i - 2], "std") ||
                 isIdent(toks[i - 2], "chrono"));
            if (!stdQualified)
                return;
        }
        out.push_back(makeFinding(
            id(), f, t,
            "call to '" + t.text +
                "' is nondeterministic (wall clock / libc rng); "
                "simulated behavior must derive from tacsim::Rng and "
                "the event queue"));
    }

    static void
    scanUnorderedDecl(const std::vector<Token> &toks, std::size_t i,
                      Project &proj)
    {
        const Token &t = toks[i];
        if (t.text != "unordered_map" && t.text != "unordered_set" &&
            t.text != "unordered_multimap" &&
            t.text != "unordered_multiset")
            return;
        std::size_t j = i + 1;
        if (j < toks.size() && isPunct(toks[j], "<")) {
            const std::size_t past = skipTemplateArgs(toks, j);
            if (past == j)
                return;
            j = past;
        }
        while (j < toks.size() &&
               (isPunct(toks[j], "&") || isPunct(toks[j], "*") ||
                isIdent(toks[j], "const")))
            ++j;
        if (j < toks.size() && toks[j].kind == Tok::Ident)
            proj.unorderedNames.insert(toks[j].text);
    }

    void
    scanRangeFor(const FileUnit &f, const std::vector<Token> &toks,
                 std::size_t i, Project &proj)
    {
        if (!isIdent(toks[i], "for") || i + 1 >= toks.size() ||
            !isPunct(toks[i + 1], "("))
            return;
        int depth = 0;
        std::size_t colon = 0, close = 0;
        for (std::size_t j = i + 1; j < toks.size(); ++j) {
            if (isPunct(toks[j], "("))
                ++depth;
            else if (isPunct(toks[j], ")")) {
                if (--depth == 0) {
                    close = j;
                    break;
                }
            } else if (isPunct(toks[j], ":") && depth == 1 && colon == 0)
                colon = j;
            else if (isPunct(toks[j], ";") && depth == 1)
                return; // classic three-clause for
        }
        if (colon == 0 || close == 0 || close <= colon + 1)
            return;
        const Token &last = toks[close - 1];
        if (last.kind != Tok::Ident)
            return; // call or subscript result: type unknowable here
        Project::RangeForSite site;
        site.path = f.path;
        site.line = toks[i].line;
        site.col = toks[i].col;
        site.ident = last.text;
        proj.rangeFors.push_back(std::move(site));
    }
};

// ------------------------------------------------ unsequenced-rng --

class UnsequencedRng : public Check
{
  public:
    const char *
    id() const override
    {
        return "unsequenced-rng";
    }
    const char *
    description() const override
    {
        return "two Rng draws inside one expression: argument and "
               "operand evaluation order is unspecified, so the draw "
               "order (and thus the whole stream) can differ between "
               "compilers; sequence the draws into separate statements";
    }

    void
    scan(const FileUnit &f, Project &,
         std::vector<Finding> &out) override
    {
        const auto &toks = f.tokens;
        // Bracket stack: '(' entries remember whether the paren is an
        // if/while/switch condition (its ')' is then a sequence point).
        std::vector<char> brackets;
        std::vector<bool> condParen;
        int drawsInExpr = 0;
        for (std::size_t i = 0; i < toks.size(); ++i) {
            const Token &t = toks[i];
            if (t.kind == Tok::Punct) {
                const std::string &p = t.text;
                if (p == "(") {
                    const bool cond = i > 0 &&
                        (isIdent(toks[i - 1], "if") ||
                         isIdent(toks[i - 1], "while") ||
                         isIdent(toks[i - 1], "switch"));
                    brackets.push_back('(');
                    condParen.push_back(cond);
                } else if (p == ")") {
                    if (!brackets.empty() && brackets.back() == '(') {
                        if (condParen.back())
                            drawsInExpr = 0; // condition fully evaluated
                        brackets.pop_back();
                        condParen.pop_back();
                    }
                } else if (p == "[") {
                    brackets.push_back('[');
                    condParen.push_back(false);
                } else if (p == "]") {
                    if (!brackets.empty() && brackets.back() == '[') {
                        brackets.pop_back();
                        condParen.pop_back();
                    }
                } else if (p == "{") {
                    brackets.push_back('{');
                    condParen.push_back(false);
                    drawsInExpr = 0;
                } else if (p == "}") {
                    if (!brackets.empty() && brackets.back() == '{') {
                        brackets.pop_back();
                        condParen.pop_back();
                    }
                    drawsInExpr = 0;
                } else if (p == ";" || p == "&&" || p == "||" ||
                           p == "?" || p == ":") {
                    // Genuine sequence points (statement boundaries;
                    // &&/||/?: sequence their operands).
                    drawsInExpr = 0;
                } else if (p == ",") {
                    // A comma directly inside braces is a
                    // braced-init-list element separator — sequenced
                    // left to right. A comma inside parens separates
                    // function arguments — NOT sequenced; keep
                    // counting.
                    if (!brackets.empty() && brackets.back() == '{')
                        drawsInExpr = 0;
                }
                continue;
            }
            if (isDraw(toks, i)) {
                if (++drawsInExpr >= 2)
                    out.push_back(makeFinding(
                        id(), f, t,
                        "second Rng draw in the same expression; "
                        "evaluation order between the draws is "
                        "unspecified — hoist one into its own "
                        "statement"));
            }
        }
    }

  private:
    /** toks[i] is an rng-ish object followed by ./-> and a draw
     *  method: rng_.next(), rng->range(n), pageRng.uniform(). */
    static bool
    isDraw(const std::vector<Token> &toks, std::size_t i)
    {
        const Token &t = toks[i];
        if (t.kind != Tok::Ident || i + 3 >= toks.size())
            return false;
        const std::string &n = t.text;
        const bool rngish = n == "rng" || n == "rng_" ||
            (n.size() > 3 &&
             (n.compare(n.size() - 3, 3, "rng") == 0 ||
              n.compare(n.size() - 4, 4, "rng_") == 0 ||
              n.compare(n.size() - 3, 3, "Rng") == 0 ||
              n.compare(n.size() - 4, 4, "Rng_") == 0));
        if (!rngish)
            return false;
        if (!isPunct(toks[i + 1], ".") && !isPunct(toks[i + 1], "->"))
            return false;
        const Token &m = toks[i + 2];
        if (m.kind != Tok::Ident ||
            (m.text != "next" && m.text != "range" &&
             m.text != "uniform" && m.text != "chance"))
            return false;
        return isPunct(toks[i + 3], "(");
    }
};

// --------------------------------------------------- raw-assert --

class RawAssert : public Check
{
  public:
    const char *
    id() const override
    {
        return "raw-assert";
    }
    const char *
    description() const override
    {
        return "raw assert() compiles away under NDEBUG; use "
               "TACSIM_CHECK (always on) or TACSIM_DCHECK "
               "(debug/verify builds) from common/types.hh";
    }

    void
    scan(const FileUnit &f, Project &,
         std::vector<Finding> &out) override
    {
        const auto &toks = f.tokens;
        for (std::size_t i = 0; i < toks.size(); ++i) {
            const Token &t = toks[i];
            if (!isIdent(t, "assert") || t.inPp)
                continue;
            if (i + 1 >= toks.size() || !isPunct(toks[i + 1], "("))
                continue;
            if (i > 0 && (isPunct(toks[i - 1], ".") ||
                          isPunct(toks[i - 1], "->") ||
                          isPunct(toks[i - 1], "::")))
                continue;
            out.push_back(makeFinding(
                id(), f, t,
                "raw assert() vanishes in NDEBUG builds; use "
                "TACSIM_CHECK / TACSIM_DCHECK (common/types.hh) so "
                "release runs keep their invariants"));
        }
    }
};

// ------------------------------------------------ banned-include --

class BannedInclude : public Check
{
  public:
    const char *
    id() const override
    {
        return "banned-include";
    }
    const char *
    description() const override
    {
        return "headers whose facilities are banned in src/: "
               "<cassert>/<assert.h> (TACSIM_CHECK), <random> "
               "(common/rng.hh), <ctime>/<time.h>/<chrono> "
               "(simulated time; wall-clock reporting needs allow())";
    }

    void
    scan(const FileUnit &f, Project &,
         std::vector<Finding> &out) override
    {
        struct Ban
        {
            const char *header;
            const char *why;
        };
        static const Ban kBans[] = {
            {"cassert", "the TACSIM_CHECK macros replace assert()"},
            {"assert.h", "the TACSIM_CHECK macros replace assert()"},
            {"random",
             "std random engines are unseeded or platform-varying; "
             "use tacsim::Rng (common/rng.hh)"},
            {"ctime", "wall-clock time must not drive simulation"},
            {"time.h", "wall-clock time must not drive simulation"},
            {"chrono",
             "simulated time comes from the event queue; wall-clock "
             "measurement for reporting only is an allow() case"},
        };
        for (const Token &t : f.tokens) {
            if (t.kind != Tok::Header)
                continue;
            for (const Ban &b : kBans) {
                if (t.text == b.header) {
                    out.push_back(makeFinding(
                        id(), f, t,
                        "#include <" + t.text + "> is banned in src/: " +
                            b.why));
                    break;
                }
            }
        }
    }
};

// -------------------------------------------- hot-path-container --

class HotPathContainer : public Check
{
  public:
    const char *
    id() const override
    {
        return "hot-path-container";
    }
    const char *
    description() const override
    {
        return "node-based std::map/std::unordered_map/set in hot-path "
               "directories (src/cache, src/vm, src/mem, src/common): "
               "a heap node per insert and a pointer chase per lookup; "
               "use AddrMap (common/addr_map.hh) or a flat vector";
    }

    void
    scan(const FileUnit &f, Project &proj,
         std::vector<Finding> &out) override
    {
        bool hot = false;
        for (const std::string &prefix : proj.opts->hotPathPrefixes)
            if (pathStartsWith(f.path, prefix))
                hot = true;
        if (!hot)
            return;
        static const char *const kBanned[] = {
            "unordered_map", "unordered_set", "unordered_multimap",
            "unordered_multiset", "map", "multimap", "multiset",
        };
        const auto &toks = f.tokens;
        for (std::size_t i = 1; i < toks.size(); ++i) {
            const Token &t = toks[i];
            if (t.kind != Tok::Ident)
                continue;
            // Only std:: qualified uses: plain "map" would drown in
            // false positives (AddrMap methods, local names).
            if (!isPunct(toks[i - 1], "::") || i < 2 ||
                !isIdent(toks[i - 2], "std"))
                continue;
            if (std::find_if(std::begin(kBanned), std::end(kBanned),
                             [&](const char *b) { return t.text == b; }) ==
                std::end(kBanned))
                continue;
            out.push_back(makeFinding(
                id(), f, t,
                "std::" + t.text +
                    " in a hot-path directory: node allocation + "
                    "pointer chasing; use AddrMap "
                    "(common/addr_map.hh), a flat vector, or allow() "
                    "with a cold-path justification"));
        }
    }
};

// ------------------------------------- stats-registry-coverage --

class StatsRegistryCoverage : public Check
{
  public:
    const char *
    id() const override
    {
        return "stats-registry-coverage";
    }
    const char *
    description() const override
    {
        return "every counter/histogram field of a *Stats struct must "
               "be registered with obs::Registry (addCounter / "
               "addHistogram) — unregistered stats escape reset "
               "auditing and sampling";
    }

    void
    scan(const FileUnit &f, Project &proj,
         std::vector<Finding> &) override
    {
        const auto &toks = f.tokens;
        for (std::size_t i = 0; i < toks.size(); ++i) {
            collectRegistrations(toks, i, proj);
            collectStatsStruct(f, toks, i, proj);
        }
    }

    void
    finalize(const Project &proj, std::vector<Finding> &out) override
    {
        for (const Project::StatsField &field : proj.statsFields) {
            if (proj.registeredMembers.count(field.fieldName) != 0)
                continue;
            Finding fi;
            fi.check = id();
            fi.path = field.path;
            fi.line = field.line;
            fi.message = "counter '" + field.structName + "::" +
                field.fieldName +
                "' is never registered with obs::Registry "
                "(addCounter/addHistogram): it will be invisible to "
                "samplers and the resetStats() audit";
            fi.extraSuppressLines.push_back(field.structLine);
            out.push_back(std::move(fi));
        }
    }

  private:
    static void
    collectRegistrations(const std::vector<Token> &toks, std::size_t i,
                         Project &proj)
    {
        const Token &t = toks[i];
        if (t.kind != Tok::Ident ||
            (t.text != "addCounter" && t.text != "addHistogram"))
            return;
        if (i + 1 >= toks.size() || !isPunct(toks[i + 1], "("))
            return;
        int depth = 0;
        for (std::size_t j = i + 1; j < toks.size(); ++j) {
            if (isPunct(toks[j], "("))
                ++depth;
            else if (isPunct(toks[j], ")")) {
                if (--depth == 0)
                    break;
            } else if (toks[j].kind == Tok::Ident && j > 0 &&
                       (isPunct(toks[j - 1], ".") ||
                        isPunct(toks[j - 1], "->")))
                proj.registeredMembers.insert(toks[j].text);
        }
    }

    void
    collectStatsStruct(const FileUnit &f, const std::vector<Token> &toks,
                       std::size_t i, Project &proj)
    {
        if (!isIdent(toks[i], "struct") || i + 1 >= toks.size())
            return;
        const Token &nameTok = toks[i + 1];
        if (nameTok.kind != Tok::Ident || nameTok.text.size() < 6 ||
            nameTok.text.compare(nameTok.text.size() - 5, 5, "Stats") !=
                0)
            return;
        // Find the opening brace (skip "final", base clauses).
        std::size_t open = i + 2;
        while (open < toks.size() && !isPunct(toks[open], "{") &&
               !isPunct(toks[open], ";"))
            ++open;
        if (open >= toks.size() || isPunct(toks[open], ";"))
            return; // forward declaration
        parseBody(f, toks, open, nameTok, proj);
    }

    /**
     * Walk the struct body collecting field declarations whose type
     * mentions uint64_t or Histogram. Method definitions (detected by
     * a '(' before any initializer) are skipped wholesale; nested
     * brace groups (method bodies, brace initializers) are skipped by
     * balance so their contents never masquerade as fields.
     */
    static void
    parseBody(const FileUnit &f, const std::vector<Token> &toks,
              std::size_t open, const Token &nameTok, Project &proj)
    {
        std::size_t j = open + 1;
        bool declHasType = false;   // saw uint64_t / Histogram
        bool declIsFunc = false;    // saw '(' while scanning the decl
        bool nameLocked = false;    // stop updating at '=', '[', '{'
        const Token *fieldName = nullptr;
        auto resetDecl = [&] {
            declHasType = declIsFunc = nameLocked = false;
            fieldName = nullptr;
        };
        while (j < toks.size()) {
            const Token &t = toks[j];
            if (isPunct(t, "}")) // end of struct body
                break;
            if (isPunct(t, "{")) {
                // Skip any nested brace group. For a field with a
                // brace initializer the name is already locked in; for
                // a method body this ends the member.
                int depth = 0;
                while (j < toks.size()) {
                    if (isPunct(toks[j], "{"))
                        ++depth;
                    else if (isPunct(toks[j], "}") && --depth == 0)
                        break;
                    ++j;
                }
                ++j;
                if (!nameLocked) {
                    // `Histogram h{...}` locks at '{'; a '{' with no
                    // preceding name is a method body — member over.
                    if (declIsFunc || fieldName == nullptr) {
                        resetDecl();
                        continue;
                    }
                }
                nameLocked = true;
                continue;
            }
            if (isPunct(t, "(")) {
                declIsFunc = true;
                int depth = 0;
                while (j < toks.size()) {
                    if (isPunct(toks[j], "("))
                        ++depth;
                    else if (isPunct(toks[j], ")") && --depth == 0)
                        break;
                    ++j;
                }
                ++j;
                continue;
            }
            if (isPunct(t, ";")) {
                if (declHasType && !declIsFunc && fieldName != nullptr) {
                    Project::StatsField field;
                    field.structName = nameTok.text;
                    field.fieldName = fieldName->text;
                    field.path = f.path;
                    field.line = fieldName->line;
                    field.structLine = nameTok.line;
                    proj.statsFields.push_back(std::move(field));
                }
                resetDecl();
                ++j;
                continue;
            }
            if (isPunct(t, "=") || isPunct(t, "["))
                nameLocked = true;
            if (t.kind == Tok::Ident) {
                if (t.text == "uint64_t" || t.text == "Histogram")
                    declHasType = true;
                if (!nameLocked)
                    fieldName = &t;
            }
            ++j;
        }
    }
};

} // namespace

std::vector<std::unique_ptr<Check>>
createChecks()
{
    std::vector<std::unique_ptr<Check>> checks;
    checks.push_back(std::make_unique<MagicPageConstant>());
    checks.push_back(std::make_unique<NondeterminismHazard>());
    checks.push_back(std::make_unique<UnsequencedRng>());
    checks.push_back(std::make_unique<RawAssert>());
    checks.push_back(std::make_unique<BannedInclude>());
    checks.push_back(std::make_unique<HotPathContainer>());
    checks.push_back(std::make_unique<StatsRegistryCoverage>());
    return checks;
}

} // namespace lint
} // namespace tacsim
