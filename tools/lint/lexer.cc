/**
 * @file
 * The tacsim-lint lexer: a single forward pass that strips comments,
 * string/char literals and raw strings, resolves integer literal
 * values (hex/octal/binary, digit separators, suffixes), tags tokens
 * with preprocessor context, and spells multi-character punctuators
 * with longest-match — everything the checks need to reason about
 * source structure without a real parser.
 */

#include "lint/lint.hh"

#include <cctype>
#include <cstdlib>

namespace tacsim {
namespace lint {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Multi-character punctuators, longest first within each leading
 *  character (linear scan is fine at lexer speed). */
const char *const kPuncts[] = {
    "<<=", ">>=", "<=>", "->*", "...", "::", "->", "<<", ">>", "<=",
    ">=", "==",  "!=",  "&&",  "||",  "+=", "-=", "*=", "/=", "%=",
    "&=", "|=",  "^=",  "++",  "--",  "##",
};

/** Parse the numeric value of an integer literal spelling; returns
 *  false for floating literals or anything strtoull rejects. */
bool
integerValue(const std::string &text, std::uint64_t &value)
{
    std::string digits;
    digits.reserve(text.size());
    for (char c : text) {
        if (c == '\'')
            continue; // digit separator
        digits.push_back(c);
    }
    // Trim integer suffixes (u, l, ll, z and case/mixed variants).
    std::size_t end = digits.size();
    while (end > 0) {
        const char c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(digits[end - 1])));
        if (c == 'u' || c == 'l' || c == 'z')
            --end;
        else
            break;
    }
    std::string body = digits.substr(0, end);
    if (body.empty())
        return false;
    const bool hex = body.size() > 2 && body[0] == '0' &&
        (body[1] == 'x' || body[1] == 'X');
    if (!hex &&
        (body.find('.') != std::string::npos ||
         body.find('e') != std::string::npos ||
         body.find('E') != std::string::npos))
        return false; // floating literal
    if (!hex &&
        (body.find('p') != std::string::npos ||
         body.find('P') != std::string::npos))
        return false; // hex-float exponent (would need the 0x path)
    // strtoull's base-0 autodetection predates C++14 binary literals.
    int base = 0;
    if (body.size() > 2 && body[0] == '0' &&
        (body[1] == 'b' || body[1] == 'B')) {
        body.erase(0, 2);
        base = 2;
    }
    char *parsed = nullptr;
    const unsigned long long v =
        std::strtoull(body.c_str(), &parsed, base);
    if (parsed == nullptr || *parsed != '\0')
        return false;
    value = v;
    return true;
}

class Lexer
{
  public:
    explicit Lexer(const std::string &src) : src_(src) {}

    std::vector<Token>
    run()
    {
        while (pos_ < src_.size())
            step();
        return std::move(out_);
    }

  private:
    char
    at(std::size_t i) const
    {
        return i < src_.size() ? src_[i] : '\0';
    }

    void
    advance(std::size_t n = 1)
    {
        while (n-- > 0 && pos_ < src_.size()) {
            if (src_[pos_] == '\n') {
                ++line_;
                col_ = 1;
                // A preprocessor directive ends at an unescaped newline.
                if (inPp_ && !lineContinued_)
                    inPp_ = ppIncludeArmed_ = false;
                lineContinued_ = false;
                atLineStart_ = true;
            } else {
                ++col_;
                if (!std::isspace(static_cast<unsigned char>(src_[pos_])))
                    atLineStart_ = false;
            }
            ++pos_;
        }
    }

    void
    emit(Tok kind, std::string text, int line, int col)
    {
        Token t;
        t.kind = kind;
        t.text = std::move(text);
        t.line = line;
        t.col = col;
        t.inPp = inPp_;
        if (kind == Tok::Number)
            t.valueValid = integerValue(t.text, t.value);
        // Track "#include" so the next <...> or "..." lexes as Header;
        // any other operand token disarms it.
        if (inPp_ && kind == Tok::Ident &&
            (t.text == "include" || t.text == "include_next"))
            ppIncludeArmed_ = true;
        else if (kind != Tok::Punct || t.text != "#")
            ppIncludeArmed_ = false;
        out_.push_back(std::move(t));
    }

    void
    step()
    {
        const char c = at(pos_);
        const char n = at(pos_ + 1);

        if (c == '\\' && n == '\n') { // line continuation
            lineContinued_ = true;
            advance(); // consume '\\'; newline handled by advance()
            advance();
            lineContinued_ = false;
            if (inPp_) // continuation keeps the directive open
                return;
            return;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            advance();
            return;
        }
        if (c == '/' && n == '/') { // line comment
            while (pos_ < src_.size() && at(pos_) != '\n') {
                if (at(pos_) == '\\' && at(pos_ + 1) == '\n')
                    advance(); // comment continues past escaped newline
                advance();
            }
            return;
        }
        if (c == '/' && n == '*') { // block comment
            advance(2);
            while (pos_ < src_.size() &&
                   !(at(pos_) == '*' && at(pos_ + 1) == '/'))
                advance();
            advance(2);
            return;
        }
        if (c == '#' && atLineStart_ && !inPp_) {
            inPp_ = true;
            emit(Tok::Punct, "#", line_, col_);
            advance();
            return;
        }
        if (ppIncludeArmed_ && (c == '<' || c == '"')) {
            lexHeaderName(c == '<' ? '>' : '"');
            return;
        }
        if (c == '"') {
            lexString();
            return;
        }
        if (c == '\'') {
            lexCharLit();
            return;
        }
        if (isIdentStart(c)) {
            lexIdentOrRawString();
            return;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && std::isdigit(static_cast<unsigned char>(n)))) {
            lexNumber();
            return;
        }
        lexPunct();
    }

    void
    lexHeaderName(char close)
    {
        const int line = line_, col = col_;
        advance(); // opening < or "
        std::string name;
        while (pos_ < src_.size() && at(pos_) != close &&
               at(pos_) != '\n') {
            name.push_back(at(pos_));
            advance();
        }
        if (at(pos_) == close)
            advance();
        ppIncludeArmed_ = false;
        emit(Tok::Header, std::move(name), line, col);
    }

    void
    lexString()
    {
        const int line = line_, col = col_;
        advance(); // opening quote
        while (pos_ < src_.size()) {
            const char c = at(pos_);
            if (c == '\\') {
                advance(2);
                continue;
            }
            if (c == '"' || c == '\n') {
                advance();
                break;
            }
            advance();
        }
        emit(Tok::String, "\"\"", line, col);
    }

    void
    lexCharLit()
    {
        const int line = line_, col = col_;
        advance();
        while (pos_ < src_.size()) {
            const char c = at(pos_);
            if (c == '\\') {
                advance(2);
                continue;
            }
            if (c == '\'' || c == '\n') {
                advance();
                break;
            }
            advance();
        }
        emit(Tok::String, "''", line, col);
    }

    void
    lexIdentOrRawString()
    {
        const int line = line_, col = col_;
        std::string text;
        while (isIdentChar(at(pos_))) {
            text.push_back(at(pos_));
            advance();
        }
        // R"delim( ... )delim" — including u8R / uR / LR prefixes.
        if (at(pos_) == '"' &&
            (text == "R" || text == "u8R" || text == "uR" || text == "LR" ||
             text == "UR")) {
            advance(); // the quote
            std::string delim;
            while (pos_ < src_.size() && at(pos_) != '(') {
                delim.push_back(at(pos_));
                advance();
            }
            advance(); // '('
            const std::string closer = ")" + delim + "\"";
            while (pos_ < src_.size() &&
                   src_.compare(pos_, closer.size(), closer) != 0)
                advance();
            advance(closer.size());
            emit(Tok::String, "\"\"", line, col);
            return;
        }
        // Other encoding prefixes glued to a quote (u8"x", L'c'): emit
        // the prefix as an identifier and let step() lex the literal.
        emit(Tok::Ident, std::move(text), line, col);
    }

    void
    lexNumber()
    {
        const int line = line_, col = col_;
        std::string text;
        while (pos_ < src_.size()) {
            const char c = at(pos_);
            if (isIdentChar(c) || c == '\'' || c == '.') {
                text.push_back(c);
                advance();
                continue;
            }
            // Exponent sign: 1e+5, 0x1p-3.
            if ((c == '+' || c == '-') && !text.empty()) {
                const char prev = static_cast<char>(std::tolower(
                    static_cast<unsigned char>(text.back())));
                const bool hex = text.size() > 1 && text[0] == '0' &&
                    (text[1] == 'x' || text[1] == 'X');
                if ((!hex && prev == 'e') || (hex && prev == 'p')) {
                    text.push_back(c);
                    advance();
                    continue;
                }
            }
            break;
        }
        emit(Tok::Number, std::move(text), line, col);
    }

    void
    lexPunct()
    {
        const int line = line_, col = col_;
        for (const char *p : kPuncts) {
            const std::size_t len = std::char_traits<char>::length(p);
            if (src_.compare(pos_, len, p) == 0) {
                advance(len);
                emit(Tok::Punct, p, line, col);
                return;
            }
        }
        std::string one(1, at(pos_));
        advance();
        emit(Tok::Punct, std::move(one), line, col);
    }

    const std::string &src_;
    std::vector<Token> out_;
    std::size_t pos_ = 0;
    int line_ = 1;
    int col_ = 1;
    bool inPp_ = false;
    bool ppIncludeArmed_ = false;
    bool atLineStart_ = true;
    bool lineContinued_ = false;
};

} // namespace

std::vector<Token>
lex(const std::string &src)
{
    return Lexer(src).run();
}

} // namespace lint
} // namespace tacsim
