/**
 * @file
 * tacsim-lint: a domain-aware static analyzer for the tacsim source tree.
 *
 * The simulator's correctness story has three mechanically checkable
 * pillars that grep cannot police precisely: the page-granule vocabulary
 * of common/types.hh (no hardcoded 4K math outside it), determinism
 * (one seeded Rng, no wall-clock, no hash-order-dependent iteration on
 * any path that feeds stats or event order), and metrics coverage
 * (every *Stats counter registered with obs::Registry so reset auditing
 * sees it). This tool owns a small lexer — comments, string literals,
 * raw strings and preprocessor context are stripped or tagged, every
 * token carries file/line/col — and a registry of checks that walk the
 * token stream, so findings land on the exact offending token instead
 * of a regex's line.
 *
 * Suppressions are explicit and reasoned:
 *
 *     code();  // tacsim-lint: allow(check-id) why this is safe
 *     // tacsim-lint: allow(check-id) applies to the next line
 *     next_line();
 *
 * A suppression with no reason, or naming an unknown check, is itself
 * a finding (malformed-suppression) — silence must be auditable.
 *
 * The driver supports a committed baseline file for grandfathered
 * findings ("<check> <path>:<line>" per line); entries that no longer
 * match any finding are reported as stale so the baseline can only
 * shrink. The target state, enforced by scripts/lint.sh and the `lint`
 * ctest label, is an empty baseline.
 */

#ifndef TACSIM_TOOLS_LINT_LINT_HH
#define TACSIM_TOOLS_LINT_LINT_HH

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace tacsim {
namespace lint {

// ------------------------------------------------------------ lexer --

enum class Tok : std::uint8_t
{
    Ident,  ///< identifier or keyword
    Number, ///< integer or floating literal (value set when integral)
    Punct,  ///< operator / punctuator, longest-match ("::", ">>", ...)
    String, ///< string or character literal (content not retained)
    Header, ///< <name> or "name" operand of an #include
};

struct Token
{
    Tok kind = Tok::Punct;
    std::string text;          ///< spelling (header name for Tok::Header)
    std::uint64_t value = 0;   ///< numeric value when valueValid
    bool valueValid = false;   ///< kind==Number and integral and parsed
    bool inPp = false;         ///< inside a preprocessor directive
    int line = 0;              ///< 1-based
    int col = 0;               ///< 1-based byte column of first char
};

/** Tokenize @p src. Comments never produce tokens; suppression comments
 *  are handled separately by parseSuppressions(). */
std::vector<Token> lex(const std::string &src);

// ----------------------------------------------------- suppressions --

struct Suppression
{
    int line = 0; ///< line the suppression *applies to*
    std::vector<std::string> checks;
    std::string reason;
};

struct SuppressionScan
{
    /** line -> suppression applying to that line. A whole-line
     *  `// tacsim-lint: allow(...)` comment applies to the next line;
     *  a trailing comment applies to its own line. */
    std::multimap<int, Suppression> byLine;
    /** Malformed directives (no reason / unknown check / bad syntax):
     *  pairs of (line, problem description). */
    std::vector<std::pair<int, std::string>> malformed;
};

SuppressionScan parseSuppressions(const std::string &src,
                                  const std::set<std::string> &knownChecks);

// ------------------------------------------------------ check model --

struct Options
{
    /** Directories (repo-relative prefixes) where node-based standard
     *  containers are banned in favour of AddrMap / flat vectors. */
    std::vector<std::string> hotPathPrefixes = {"src/cache", "src/vm",
                                                "src/mem", "src/common"};
    /** Files allowed to spell page geometry as raw numbers (the one
     *  place the vocabulary is *defined*). */
    std::vector<std::string> pageMathExempt = {"src/common/types.hh"};
    /** Run only these check ids (empty = all registered checks). */
    std::vector<std::string> enabledChecks;
};

struct FileUnit
{
    std::string path; ///< repo-relative, '/'-separated
    std::vector<Token> tokens;
};

struct Finding
{
    std::string check;
    std::string path;
    int line = 0;
    int col = 0;
    std::string message;
    /** Extra lines whose suppressions also cover this finding (e.g. a
     *  struct-level allow() covering every field it declares). */
    std::vector<int> extraSuppressLines;
};

/** Cross-file state accumulated during scan, consumed in finalize. */
struct Project
{
    const Options *opts = nullptr;

    /** Names declared anywhere with std::unordered_{map,set,...} type. */
    std::set<std::string> unorderedNames;
    struct RangeForSite
    {
        std::string path;
        int line = 0;
        int col = 0;
        std::string ident; ///< last identifier of the range expression
    };
    std::vector<RangeForSite> rangeFors;

    /** Member names referenced inside addCounter()/addHistogram() args. */
    std::set<std::string> registeredMembers;
    struct StatsField
    {
        std::string structName;
        std::string fieldName;
        std::string path;
        int line = 0;       ///< field declaration line
        int structLine = 0; ///< struct declaration line (for allow())
    };
    std::vector<StatsField> statsFields;
};

class Check
{
  public:
    virtual ~Check() = default;
    virtual const char *id() const = 0;
    virtual const char *description() const = 0;
    /** Per-file pass: emit file-local findings, accumulate Project
     *  state for finalize(). */
    virtual void scan(const FileUnit &f, Project &proj,
                      std::vector<Finding> &out) = 0;
    /** Whole-project pass after every file was scanned. */
    virtual void
    finalize(const Project &proj, std::vector<Finding> &out)
    {
        (void)proj;
        (void)out;
    }
};

/** The full registry, in stable order. */
std::vector<std::unique_ptr<Check>> createChecks();

// ----------------------------------------------------------- driver --

struct Report
{
    struct Suppressed
    {
        Finding finding;
        std::string reason;
    };

    std::vector<Finding> active;      ///< fail the gate
    std::vector<Suppressed> suppressed;
    std::vector<Finding> baselined;   ///< grandfathered by the baseline
    std::vector<std::string> staleBaseline; ///< entries matching nothing
    std::vector<Finding> malformed;   ///< malformed-suppression findings
    int filesScanned = 0;

    bool
    clean() const
    {
        return active.empty() && malformed.empty() && staleBaseline.empty();
    }
};

/** Baseline key of a finding: "<check> <path>:<line>". */
std::string baselineKey(const Finding &f);

/** Parse a baseline file body ('#' comments and blank lines skipped). */
std::vector<std::string> parseBaseline(const std::string &body);

/** Run every enabled check over @p files ((repo-relative path, content)
 *  pairs). Findings are sorted by (path, line, col, check). */
Report runLint(const std::vector<std::pair<std::string, std::string>> &files,
               const Options &opts,
               const std::vector<std::string> &baseline);

/** Serialize as the stable `tacsim-lint-v1` JSON schema. */
std::string toJson(const Report &report);

/** Human-readable text report (one "path:line:col: [check] msg" per
 *  finding plus a summary line). */
std::string toText(const Report &report);

/**
 * Recursively collect *.cc / *.hh under each of @p paths (files are
 * taken as-is), returning (repo-relative path, absolute path) pairs
 * sorted by relative path. @p root anchors the relative spelling.
 */
std::vector<std::pair<std::string, std::string>>
collectFiles(const std::string &root, const std::vector<std::string> &paths);

} // namespace lint
} // namespace tacsim

#endif // TACSIM_TOOLS_LINT_LINT_HH
