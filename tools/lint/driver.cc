/**
 * @file
 * tacsim-lint driver: suppression parsing, check orchestration,
 * baseline matching, and report serialization (text + the stable
 * tacsim-lint-v1 JSON schema consumed by CI artifacts).
 */

#include "lint/lint.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <sstream>

namespace tacsim {
namespace lint {

namespace {

const char kMarker[] = "tacsim-lint:";

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
findingOrder(const Finding &a, const Finding &b)
{
    if (a.path != b.path)
        return a.path < b.path;
    if (a.line != b.line)
        return a.line < b.line;
    if (a.col != b.col)
        return a.col < b.col;
    return a.check < b.check;
}

void
jsonEscape(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
jsonFinding(std::ostream &os, const Finding &f, const std::string &reason,
            bool withReason)
{
    os << "{\"check\":";
    jsonEscape(os, f.check);
    os << ",\"file\":";
    jsonEscape(os, f.path);
    os << ",\"line\":" << f.line << ",\"col\":" << f.col
       << ",\"message\":";
    jsonEscape(os, f.message);
    if (withReason) {
        os << ",\"reason\":";
        jsonEscape(os, reason);
    }
    os << "}";
}

} // namespace

SuppressionScan
parseSuppressions(const std::string &src,
                  const std::set<std::string> &knownChecks)
{
    SuppressionScan out;
    std::istringstream is(src);
    std::string lineText;
    int lineNo = 0;
    while (std::getline(is, lineText)) {
        ++lineNo;
        const std::size_t mark = lineText.find(kMarker);
        if (mark == std::string::npos)
            continue;
        // The directive must live in a // comment.
        const std::size_t slashes = lineText.rfind("//", mark);
        if (slashes == std::string::npos) {
            out.malformed.emplace_back(
                lineNo, "tacsim-lint directive outside a // comment");
            continue;
        }
        std::string rest =
            trim(lineText.substr(mark + sizeof kMarker - 1));
        if (rest.compare(0, 6, "allow(") != 0) {
            out.malformed.emplace_back(
                lineNo,
                "expected 'allow(<check>[,<check>...]) <reason>' after "
                "'tacsim-lint:'");
            continue;
        }
        const std::size_t close = rest.find(')');
        if (close == std::string::npos) {
            out.malformed.emplace_back(lineNo,
                                       "unterminated allow( list");
            continue;
        }
        Suppression sup;
        std::string list = rest.substr(6, close - 6);
        std::string bad;
        std::size_t start = 0;
        while (start <= list.size()) {
            std::size_t comma = list.find(',', start);
            if (comma == std::string::npos)
                comma = list.size();
            const std::string name =
                trim(list.substr(start, comma - start));
            if (!name.empty()) {
                if (knownChecks.count(name) == 0 && bad.empty())
                    bad = name;
                sup.checks.push_back(name);
            }
            start = comma + 1;
        }
        sup.reason = trim(rest.substr(close + 1));
        if (sup.checks.empty()) {
            out.malformed.emplace_back(lineNo, "empty allow() list");
            continue;
        }
        if (!bad.empty()) {
            out.malformed.emplace_back(
                lineNo, "unknown check '" + bad + "' in allow()");
            continue;
        }
        if (sup.reason.empty()) {
            out.malformed.emplace_back(
                lineNo,
                "allow() without a reason — say why the finding is "
                "safe");
            continue;
        }
        // Whole-line comment => applies to the next line; trailing
        // comment => applies to its own line.
        const bool wholeLine =
            trim(lineText.substr(0, slashes)).empty();
        sup.line = wholeLine ? lineNo + 1 : lineNo;
        out.byLine.emplace(sup.line, std::move(sup));
    }
    return out;
}

std::string
baselineKey(const Finding &f)
{
    return f.check + " " + f.path + ":" + std::to_string(f.line);
}

std::vector<std::string>
parseBaseline(const std::string &body)
{
    std::vector<std::string> entries;
    std::istringstream is(body);
    std::string line;
    while (std::getline(is, line)) {
        line = trim(line);
        if (line.empty() || line[0] == '#')
            continue;
        entries.push_back(line);
    }
    return entries;
}

Report
runLint(const std::vector<std::pair<std::string, std::string>> &files,
        const Options &opts, const std::vector<std::string> &baseline)
{
    auto checks = createChecks();
    std::set<std::string> knownChecks;
    for (const auto &c : checks)
        knownChecks.insert(c->id());

    const bool filter = !opts.enabledChecks.empty();
    auto enabled = [&](const char *checkId) {
        if (!filter)
            return true;
        return std::find(opts.enabledChecks.begin(),
                         opts.enabledChecks.end(),
                         checkId) != opts.enabledChecks.end();
    };

    Project proj;
    proj.opts = &opts;
    std::vector<Finding> findings;
    std::map<std::string, SuppressionScan> suppressions;

    Report report;
    for (const auto &[path, content] : files) {
        ++report.filesScanned;
        FileUnit unit;
        unit.path = path;
        unit.tokens = lex(content);
        SuppressionScan sup = parseSuppressions(content, knownChecks);
        for (const auto &[line, what] : sup.malformed) {
            Finding f;
            f.check = "malformed-suppression";
            f.path = path;
            f.line = line;
            f.message = what;
            report.malformed.push_back(std::move(f));
        }
        suppressions.emplace(path, std::move(sup));
        for (auto &check : checks)
            if (enabled(check->id()))
                check->scan(unit, proj, findings);
    }
    for (auto &check : checks)
        if (enabled(check->id()))
            check->finalize(proj, findings);

    std::sort(findings.begin(), findings.end(), findingOrder);
    std::sort(report.malformed.begin(), report.malformed.end(),
              findingOrder);

    std::set<std::string> baselineSet(baseline.begin(), baseline.end());
    std::set<std::string> baselineHit;

    for (Finding &f : findings) {
        // Suppressed by an allow() on the finding line (or, e.g. for
        // struct-scoped findings, a designated extra line)?
        const std::string *reason = nullptr;
        auto it = suppressions.find(f.path);
        if (it != suppressions.end()) {
            std::vector<int> lines = f.extraSuppressLines;
            lines.push_back(f.line);
            for (int line : lines) {
                auto [lo, hi] = it->second.byLine.equal_range(line);
                for (auto s = lo; s != hi && reason == nullptr; ++s)
                    for (const std::string &c : s->second.checks)
                        if (c == f.check) {
                            reason = &s->second.reason;
                            break;
                        }
                if (reason != nullptr)
                    break;
            }
        }
        if (reason != nullptr) {
            report.suppressed.push_back({std::move(f), *reason});
            continue;
        }
        const std::string key = baselineKey(f);
        if (baselineSet.count(key) != 0) {
            baselineHit.insert(key);
            report.baselined.push_back(std::move(f));
            continue;
        }
        report.active.push_back(std::move(f));
    }
    for (const std::string &entry : baseline)
        if (baselineHit.count(entry) == 0)
            report.staleBaseline.push_back(entry);
    return report;
}

std::string
toJson(const Report &report)
{
    std::ostringstream os;
    os << "{\"schema\":\"tacsim-lint-v1\",\"files_scanned\":"
       << report.filesScanned << ",\"findings\":[";
    for (std::size_t i = 0; i < report.active.size(); ++i) {
        if (i)
            os << ",";
        jsonFinding(os, report.active[i], "", false);
    }
    os << "],\"suppressed\":[";
    for (std::size_t i = 0; i < report.suppressed.size(); ++i) {
        if (i)
            os << ",";
        jsonFinding(os, report.suppressed[i].finding,
                    report.suppressed[i].reason, true);
    }
    os << "],\"baselined\":[";
    for (std::size_t i = 0; i < report.baselined.size(); ++i) {
        if (i)
            os << ",";
        jsonFinding(os, report.baselined[i], "", false);
    }
    os << "],\"stale_baseline\":[";
    for (std::size_t i = 0; i < report.staleBaseline.size(); ++i) {
        if (i)
            os << ",";
        jsonEscape(os, report.staleBaseline[i]);
    }
    os << "],\"malformed_suppressions\":[";
    for (std::size_t i = 0; i < report.malformed.size(); ++i) {
        if (i)
            os << ",";
        jsonFinding(os, report.malformed[i], "", false);
    }
    os << "],\"clean\":" << (report.clean() ? "true" : "false") << "}\n";
    return os.str();
}

std::string
toText(const Report &report)
{
    std::ostringstream os;
    for (const Finding &f : report.active)
        os << f.path << ":" << f.line << ":" << f.col << ": ["
           << f.check << "] " << f.message << "\n";
    for (const Finding &f : report.malformed)
        os << f.path << ":" << f.line << ": [malformed-suppression] "
           << f.message << "\n";
    for (const std::string &entry : report.staleBaseline)
        os << "stale baseline entry (fixed or moved — remove it): "
           << entry << "\n";
    os << "tacsim-lint: " << report.filesScanned << " files, "
       << report.active.size() << " finding(s), "
       << report.suppressed.size() << " suppressed, "
       << report.baselined.size() << " baselined, "
       << report.staleBaseline.size() << " stale baseline entr"
       << (report.staleBaseline.size() == 1 ? "y" : "ies") << ", "
       << report.malformed.size() << " malformed suppression(s)\n";
    return os.str();
}

std::vector<std::pair<std::string, std::string>>
collectFiles(const std::string &root, const std::vector<std::string> &paths)
{
    namespace fs = std::filesystem;
    const fs::path rootPath = fs::absolute(fs::path(root)).lexically_normal();
    std::vector<std::pair<std::string, std::string>> out;
    auto add = [&](const fs::path &p) {
        const std::string ext = p.extension().string();
        if (ext != ".cc" && ext != ".hh" && ext != ".cpp" && ext != ".h")
            return;
        const fs::path abs = fs::absolute(p).lexically_normal();
        std::string rel =
            abs.lexically_relative(rootPath).generic_string();
        if (rel.empty() || rel.compare(0, 2, "..") == 0)
            rel = abs.generic_string(); // outside root: absolute
        out.emplace_back(rel, abs.string());
    };
    for (const std::string &p : paths) {
        fs::path path(p);
        if (fs::is_directory(path)) {
            for (const auto &entry :
                 fs::recursive_directory_iterator(path))
                if (entry.is_regular_file())
                    add(entry.path());
        } else {
            add(path);
        }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

} // namespace lint
} // namespace tacsim
