/**
 * @file
 * tacsim-trace: the trace subsystem's command-line front end.
 *
 *   record  run a synthetic benchmark and capture the instruction
 *           stream it consumes into a `tacsim-trace-v1` file (the
 *           canonical stats dump of the recording run is available via
 *           --dump for round-trip comparison)
 *   replay  run the simulator on a recorded trace (same knobs)
 *   info    print a trace file's header metadata
 *   verify  full-file integrity check (decode + counts + CRC)
 *   import  convert a ChampSim input_instr trace (raw, or gzip when
 *           built with zlib) into tacsim-trace-v1
 *
 * record/replay share budgets and config flags, so
 *   tacsim-trace record --benchmark mcf --out t.tactrc --dump a.txt
 *   tacsim-trace replay --trace t.tactrc --dump b.txt
 * must produce byte-identical a.txt and b.txt — CI's trace-roundtrip
 * job gates on exactly that.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#ifdef TACSIM_HAVE_ZLIB
#include <zlib.h>
#endif

#include "sim/config.hh"
#include "sim/runner.hh"
#include "sim/stats_dump.hh"
#include "trace/champsim.hh"
#include "trace/reader.hh"
#include "trace/writer.hh"

namespace {

using namespace tacsim;

int
usage(int code)
{
    std::fprintf(
        stderr,
        "usage: tacsim-trace <command> [options]\n"
        "\n"
        "  record  --benchmark NAME --out FILE [--instructions N]\n"
        "          [--warmup N] [--seed S] [--proposed] [--dump FILE]\n"
        "  replay  --trace FILE [--instructions N] [--warmup N]\n"
        "          [--proposed] [--dump FILE]\n"
        "  info    FILE\n"
        "  verify  FILE\n"
        "  import  --in FILE --out FILE [--benchmark NAME]\n"
        "          [--footprint BYTES] [--seed S] [--limit N]\n"
        "\n"
        "record/replay budgets default to TACSIM_INSTRUCTIONS /\n"
        "TACSIM_WARMUP (runner defaults). --proposed layers the paper's\n"
        "T-DRRIP/T-SHiP/ATP/TEMPO onto the baseline config.\n");
    return code;
}

struct Args
{
    std::string benchmark, out, tracePath, in, dump;
    std::uint64_t instructions = 0, warmup = 0, seed = 1;
    std::uint64_t footprint = 0, limit = 0;
    bool proposed = false;
};

bool
parseArgs(int argc, char **argv, int start, Args &a)
{
    for (int i = start; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "tacsim-trace: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--benchmark")
            a.benchmark = value();
        else if (arg == "--out")
            a.out = value();
        else if (arg == "--trace")
            a.tracePath = value();
        else if (arg == "--in")
            a.in = value();
        else if (arg == "--dump")
            a.dump = value();
        else if (arg == "--instructions")
            a.instructions = std::strtoull(value(), nullptr, 10);
        else if (arg == "--warmup")
            a.warmup = std::strtoull(value(), nullptr, 10);
        else if (arg == "--seed")
            a.seed = std::strtoull(value(), nullptr, 10);
        else if (arg == "--footprint")
            a.footprint = std::strtoull(value(), nullptr, 10);
        else if (arg == "--limit")
            a.limit = std::strtoull(value(), nullptr, 10);
        else if (arg == "--proposed")
            a.proposed = true;
        else
            return false;
    }
    return true;
}

SystemConfig
configFor(const Args &a)
{
    SystemConfig cfg{};
    cfg.seed = a.seed;
    if (a.proposed) {
        TranslationAwareOptions ta;
        ta.tempo = true;
        applyTranslationAware(cfg, ta);
    }
    return cfg;
}

/** Print the canonical stats dump, or write it to --dump. */
int
emitDump(const RunResult &r, const std::string &dumpPath)
{
    const std::string dump = dumpRunResult(r);
    if (dumpPath.empty()) {
        std::fputs(dump.c_str(), stdout);
        return 0;
    }
    std::FILE *f = std::fopen(dumpPath.c_str(), "w");
    if (!f || std::fwrite(dump.data(), 1, dump.size(), f) != dump.size() ||
        std::fclose(f) != 0) {
        std::fprintf(stderr, "tacsim-trace: cannot write dump %s\n",
                     dumpPath.c_str());
        if (f)
            std::fclose(f);
        return 1;
    }
    std::fprintf(stderr, "tacsim-trace: stats dump written to %s\n",
                 dumpPath.c_str());
    return 0;
}

int
cmdRecord(const Args &a)
{
    if (a.benchmark.empty() || a.out.empty()) {
        std::fprintf(stderr,
                     "tacsim-trace record: --benchmark and --out are "
                     "required\n");
        return 2;
    }
    const SystemConfig cfg = configFor(a);
    std::unique_ptr<Workload> inner =
        makeWorkloadFromSpec(a.benchmark, cfg.seed);
    auto writer = std::make_shared<trace::TraceWriter>(
        a.out, trace::RecordingWorkload::headerFor(*inner, cfg.seed));

    std::vector<std::unique_ptr<Workload>> wls;
    wls.push_back(std::make_unique<trace::RecordingWorkload>(
        std::move(inner), writer));
    const RunResult r = runWorkloads(cfg, std::move(wls), "",
                                     a.instructions, a.warmup);
    writer->finalize();

    std::fprintf(stderr,
                 "tacsim-trace: recorded %llu records (%llu retired "
                 "instructions) -> %s\n",
                 static_cast<unsigned long long>(writer->recordCount()),
                 static_cast<unsigned long long>(r.instructions),
                 a.out.c_str());
    return emitDump(r, a.dump);
}

int
cmdReplay(const Args &a)
{
    if (a.tracePath.empty()) {
        std::fprintf(stderr,
                     "tacsim-trace replay: --trace is required\n");
        return 2;
    }
    const SystemConfig cfg = configFor(a);
    const RunResult r = runSpec(cfg, "trace:" + a.tracePath,
                                a.instructions, a.warmup);
    std::fprintf(stderr,
                 "tacsim-trace: replayed %s (%llu retired "
                 "instructions, IPC %.4f)\n",
                 a.tracePath.c_str(),
                 static_cast<unsigned long long>(r.instructions), r.ipc);
    return emitDump(r, a.dump);
}

int
cmdInfo(const std::string &path)
{
    trace::TraceReader reader(path);
    const trace::TraceHeader &h = reader.header();

    std::FILE *f = std::fopen(path.c_str(), "rb");
    long bytes = 0;
    if (f) {
        std::fseek(f, 0, SEEK_END);
        bytes = std::ftell(f);
        std::fclose(f);
    }

    std::printf("file        %s\n", path.c_str());
    std::printf("format      tacsim-trace-v%u\n", trace::kVersion);
    std::printf("benchmark   %s\n", h.name.c_str());
    std::printf("footprint   %llu bytes\n",
                static_cast<unsigned long long>(h.footprint));
    std::printf("seed        %llu\n",
                static_cast<unsigned long long>(h.seed));
    std::printf("records     %llu\n",
                static_cast<unsigned long long>(h.recordCount));
    std::printf("file bytes  %ld\n", bytes);
    if (h.recordCount) {
        std::printf("bytes/rec   %.2f\n",
                    double(bytes) / double(h.recordCount));
    } else {
        std::fprintf(stderr,
                     "tacsim-trace: %s: empty trace (0 records)\n",
                     path.c_str());
        return 1;
    }
    return 0;
}

int
cmdVerify(const std::string &path)
{
    const trace::VerifyResult v = trace::verifyTraceFile(path);
    if (!v.ok) {
        std::fprintf(stderr, "tacsim-trace: %s: FAILED: %s\n",
                     path.c_str(), v.error.c_str());
        return 1;
    }
    std::printf("%s: OK (%llu records, %llu payload bytes, CRC ok)\n",
                path.c_str(),
                static_cast<unsigned long long>(v.header.recordCount),
                static_cast<unsigned long long>(v.payloadBytes));
    return 0;
}

int
cmdImport(const Args &a)
{
    if (a.in.empty() || a.out.empty()) {
        std::fprintf(stderr,
                     "tacsim-trace import: --in and --out are required\n");
        return 2;
    }

    trace::ChampSimImportOptions opts;
    if (!a.benchmark.empty())
        opts.name = a.benchmark;
    opts.footprint = a.footprint;
    opts.seed = a.seed;
    opts.maxInstructions = a.limit;

    trace::ChampSimImportStats stats;
#ifdef TACSIM_HAVE_ZLIB
    // gzopen reads both gzip-compressed and plain files transparently.
    gzFile gz = gzopen(a.in.c_str(), "rb");
    if (!gz) {
        std::fprintf(stderr, "tacsim-trace: cannot open %s\n",
                     a.in.c_str());
        return 1;
    }
    try {
        stats = trace::importChampSim(
            [gz](void *buf, std::size_t n) -> std::size_t {
                const int got =
                    gzread(gz, buf, static_cast<unsigned>(n));
                if (got < 0)
                    throw std::runtime_error(
                        "champsim import: gzread failed");
                return static_cast<std::size_t>(got);
            },
            a.out, opts);
    } catch (...) {
        gzclose(gz);
        throw;
    }
    gzclose(gz);
#else
    std::FILE *f = std::fopen(a.in.c_str(), "rb");
    if (!f) {
        std::fprintf(stderr, "tacsim-trace: cannot open %s\n",
                     a.in.c_str());
        return 1;
    }
    unsigned char magic[2] = {0, 0};
    const std::size_t head = std::fread(magic, 1, 2, f);
    if (head == 2 && magic[0] == 0x1F && magic[1] == 0x8B) {
        std::fclose(f);
        std::fprintf(stderr,
                     "tacsim-trace: %s is gzip-compressed but this "
                     "build lacks zlib; decompress it first\n",
                     a.in.c_str());
        return 1;
    }
    std::rewind(f);
    try {
        stats = trace::importChampSim(
            [f](void *buf, std::size_t n) {
                return std::fread(buf, 1, n, f);
            },
            a.out, opts);
    } catch (...) {
        std::fclose(f);
        throw;
    }
    std::fclose(f);
#endif

    std::printf("imported %llu instructions -> %llu records "
                "(%llu loads, %llu stores, %llu non-mem, "
                "%llu dependent) -> %s\n",
                static_cast<unsigned long long>(stats.instructions),
                static_cast<unsigned long long>(stats.records),
                static_cast<unsigned long long>(stats.loads),
                static_cast<unsigned long long>(stats.stores),
                static_cast<unsigned long long>(stats.nonMem),
                static_cast<unsigned long long>(stats.dependent),
                a.out.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(2);
    const std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "help")
        return usage(0);

    try {
        if (cmd == "info" || cmd == "verify") {
            if (argc != 3)
                return usage(2);
            return cmd == "info" ? cmdInfo(argv[2]) : cmdVerify(argv[2]);
        }
        Args a;
        if (!parseArgs(argc, argv, 2, a))
            return usage(2);
        if (cmd == "record")
            return cmdRecord(a);
        if (cmd == "replay")
            return cmdReplay(a);
        if (cmd == "import")
            return cmdImport(a);
        return usage(2);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "tacsim-trace: %s\n", e.what());
        return 1;
    }
}
