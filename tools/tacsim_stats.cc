/**
 * @file
 * tacsim-stats: command-line front end for `tacsim-timeseries-v1`
 * files (the JSONL emitted by the obs::Sampler, see src/obs/).
 *
 *   summarize  print per-metric first/last/delta over a run, plus the
 *              header metadata (label, interval, sample/reset counts)
 *   diff       compare the final sample of two files metric by metric;
 *              exit 1 when they differ (CI's determinism checks diff a
 *              serial run against a TACSIM_JOBS run this way)
 *
 * The format is one JSON object per line and entirely produced by this
 * repo, so parsing is a small purpose-built scanner rather than a JSON
 * library: a header line carrying the column names, then sample lines
 * `{"i":...,"c":...,"v":[...]}` interleaved with reset markers
 * `{"event":"reset",...}`. Values are compared as the exact byte
 * strings the sampler printed — determinism means byte-equal files, so
 * diff must not round-trip through doubles.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace {

int
usage(int code)
{
    std::fprintf(
        stderr,
        "usage: tacsim-stats <command> [options]\n"
        "\n"
        "  summarize FILE [--filter PREFIX] [--all]\n"
        "  diff      FILE_A FILE_B\n"
        "\n"
        "summarize prints first/last/delta per metric over the run\n"
        "(metrics that stayed zero are hidden unless --all; --filter\n"
        "keeps only metric names starting with PREFIX). diff compares\n"
        "the final sample of two tacsim-timeseries-v1 files and exits\n"
        "1 when any metric differs.\n");
    return code;
}

struct Sample
{
    std::uint64_t instructions = 0;
    std::uint64_t cycle = 0;
    std::vector<std::string> values; ///< verbatim number tokens
};

struct TimeSeries
{
    std::string path;
    std::string label;
    std::uint64_t interval = 0;
    std::vector<std::string> columns;
    std::vector<Sample> samples;
    std::uint64_t resets = 0;
};

[[noreturn]] void
fail(const std::string &path, const std::string &why)
{
    throw std::runtime_error(path + ": " + why);
}

/** Return the position just past `"key":`, or npos. */
std::size_t
findKey(const std::string &line, const char *key)
{
    const std::string needle = "\"" + std::string(key) + "\":";
    const std::size_t at = line.find(needle);
    return at == std::string::npos ? at : at + needle.size();
}

std::uint64_t
parseIntField(const std::string &path, const std::string &line,
              const char *key)
{
    const std::size_t at = findKey(line, key);
    if (at == std::string::npos)
        fail(path, std::string("missing \"") + key + "\" field");
    return std::strtoull(line.c_str() + at, nullptr, 10);
}

std::string
parseStringField(const std::string &path, const std::string &line,
                 const char *key)
{
    std::size_t at = findKey(line, key);
    if (at == std::string::npos || at >= line.size() || line[at] != '"')
        fail(path, std::string("missing \"") + key + "\" field");
    ++at;
    std::string out;
    while (at < line.size() && line[at] != '"') {
        if (line[at] == '\\' && at + 1 < line.size())
            ++at;
        out += line[at++];
    }
    return out;
}

/** Parse `"key":[ "a", "b", ... ]` (quoted strings, no nesting). */
std::vector<std::string>
parseStringArray(const std::string &path, const std::string &line,
                 const char *key)
{
    std::size_t at = findKey(line, key);
    if (at == std::string::npos || at >= line.size() || line[at] != '[')
        fail(path, std::string("missing \"") + key + "\" array");
    ++at;
    std::vector<std::string> out;
    while (at < line.size() && line[at] != ']') {
        if (line[at] != '"')
            fail(path, std::string("malformed \"") + key + "\" array");
        ++at;
        std::string item;
        while (at < line.size() && line[at] != '"') {
            if (line[at] == '\\' && at + 1 < line.size())
                ++at;
            item += line[at++];
        }
        if (at >= line.size())
            fail(path, std::string("unterminated \"") + key + "\" array");
        ++at; // closing quote
        out.push_back(std::move(item));
        if (at < line.size() && line[at] == ',')
            ++at;
    }
    if (at >= line.size())
        fail(path, std::string("unterminated \"") + key + "\" array");
    return out;
}

/** Parse `"v":[1,2.5,...]` into verbatim number tokens. */
std::vector<std::string>
parseValueArray(const std::string &path, const std::string &line)
{
    std::size_t at = findKey(line, "v");
    if (at == std::string::npos || at >= line.size() || line[at] != '[')
        fail(path, "sample line missing \"v\" array");
    ++at;
    std::vector<std::string> out;
    std::string token;
    for (; at < line.size(); ++at) {
        const char c = line[at];
        if (c == ',' || c == ']') {
            if (!token.empty())
                out.push_back(token);
            token.clear();
            if (c == ']')
                return out;
        } else {
            token += c;
        }
    }
    fail(path, "unterminated \"v\" array");
}

TimeSeries
loadTimeSeries(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fail(path, "cannot open file");

    TimeSeries ts;
    ts.path = path;

    std::string line;
    if (!std::getline(in, line) || line.empty())
        fail(path, "empty file (expected tacsim-timeseries-v1 header)");
    if (line.find("\"schema\":\"tacsim-timeseries-v1\"") ==
        std::string::npos)
        fail(path, "not a tacsim-timeseries-v1 file (bad header line)");
    ts.label = parseStringField(path, line, "label");
    ts.interval = parseIntField(path, line, "interval");
    ts.columns = parseStringArray(path, line, "columns");

    std::size_t lineNo = 1;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        if (line.find("\"event\":\"reset\"") != std::string::npos) {
            ++ts.resets;
            continue;
        }
        Sample s;
        s.instructions = parseIntField(path, line, "i");
        s.cycle = parseIntField(path, line, "c");
        s.values = parseValueArray(path, line);
        if (s.values.size() != ts.columns.size())
            fail(path,
                 "line " + std::to_string(lineNo) + ": sample has " +
                     std::to_string(s.values.size()) + " values for " +
                     std::to_string(ts.columns.size()) + " columns");
        ts.samples.push_back(std::move(s));
    }
    return ts;
}

bool
isZero(const std::string &token)
{
    return std::strtod(token.c_str(), nullptr) == 0.0;
}

int
cmdSummarize(const std::string &path, const std::string &filter,
             bool showAll)
{
    const TimeSeries ts = loadTimeSeries(path);

    std::printf("file       %s\n", ts.path.c_str());
    std::printf("label      %s\n", ts.label.c_str());
    std::printf("interval   %llu\n",
                static_cast<unsigned long long>(ts.interval));
    std::printf("columns    %zu\n", ts.columns.size());
    std::printf("samples    %zu\n", ts.samples.size());
    std::printf("resets     %llu\n",
                static_cast<unsigned long long>(ts.resets));
    if (ts.samples.empty()) {
        std::printf("(no samples)\n");
        return 0;
    }
    const Sample &first = ts.samples.front();
    const Sample &last = ts.samples.back();
    std::printf("range      i=%llu..%llu c=%llu..%llu\n",
                static_cast<unsigned long long>(first.instructions),
                static_cast<unsigned long long>(last.instructions),
                static_cast<unsigned long long>(first.cycle),
                static_cast<unsigned long long>(last.cycle));

    std::printf("\n%-48s %16s %16s %16s\n", "metric", "first", "last",
                "delta");
    std::size_t shown = 0, hidden = 0;
    for (std::size_t i = 0; i < ts.columns.size(); ++i) {
        const std::string &name = ts.columns[i];
        if (!filter.empty() && name.compare(0, filter.size(), filter) != 0)
            continue;
        const std::string &f = first.values[i];
        const std::string &l = last.values[i];
        if (!showAll && isZero(f) && isZero(l)) {
            ++hidden;
            continue;
        }
        const double delta = std::strtod(l.c_str(), nullptr) -
            std::strtod(f.c_str(), nullptr);
        std::printf("%-48s %16s %16s %16.12g\n", name.c_str(), f.c_str(),
                    l.c_str(), delta);
        ++shown;
    }
    if (hidden)
        std::printf("(%zu all-zero metric%s hidden; --all shows them)\n",
                    hidden, hidden == 1 ? "" : "s");
    if (!filter.empty() && shown == 0 && hidden == 0)
        std::printf("(no metrics match filter '%s')\n", filter.c_str());
    return 0;
}

int
cmdDiff(const std::string &pathA, const std::string &pathB)
{
    const TimeSeries a = loadTimeSeries(pathA);
    const TimeSeries b = loadTimeSeries(pathB);

    if (a.columns != b.columns) {
        std::fprintf(stderr,
                     "tacsim-stats: column sets differ (%zu vs %zu "
                     "columns)\n",
                     a.columns.size(), b.columns.size());
        for (const std::string &c : a.columns)
            if (std::find(b.columns.begin(), b.columns.end(), c) ==
                b.columns.end())
                std::fprintf(stderr, "  only in %s: %s\n", pathA.c_str(),
                             c.c_str());
        for (const std::string &c : b.columns)
            if (std::find(a.columns.begin(), a.columns.end(), c) ==
                a.columns.end())
                std::fprintf(stderr, "  only in %s: %s\n", pathB.c_str(),
                             c.c_str());
        return 1;
    }
    if (a.samples.empty() || b.samples.empty()) {
        std::fprintf(stderr, "tacsim-stats: %s has no samples\n",
                     a.samples.empty() ? pathA.c_str() : pathB.c_str());
        return 1;
    }

    const Sample &fa = a.samples.back();
    const Sample &fb = b.samples.back();
    std::size_t diffs = 0;
    if (fa.instructions != fb.instructions ||
        fa.cycle != fb.cycle) {
        std::printf("endpoint: i=%llu c=%llu vs i=%llu c=%llu\n",
                    static_cast<unsigned long long>(fa.instructions),
                    static_cast<unsigned long long>(fa.cycle),
                    static_cast<unsigned long long>(fb.instructions),
                    static_cast<unsigned long long>(fb.cycle));
        ++diffs;
    }
    for (std::size_t i = 0; i < a.columns.size(); ++i) {
        if (fa.values[i] == fb.values[i])
            continue;
        std::printf("%s: %s vs %s\n", a.columns[i].c_str(),
                    fa.values[i].c_str(), fb.values[i].c_str());
        ++diffs;
    }
    if (diffs) {
        std::fprintf(stderr,
                     "tacsim-stats: %zu metric%s differ between %s "
                     "and %s\n",
                     diffs, diffs == 1 ? "" : "s", pathA.c_str(),
                     pathB.c_str());
        return 1;
    }
    std::printf("%s and %s: final samples identical (%zu metrics)\n",
                pathA.c_str(), pathB.c_str(), a.columns.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(2);
    const std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "help")
        return usage(0);

    try {
        if (cmd == "summarize") {
            std::string path, filter;
            bool showAll = false;
            for (int i = 2; i < argc; ++i) {
                const std::string arg = argv[i];
                if (arg == "--all") {
                    showAll = true;
                } else if (arg == "--filter") {
                    if (i + 1 >= argc)
                        return usage(2);
                    filter = argv[++i];
                } else if (path.empty()) {
                    path = arg;
                } else {
                    return usage(2);
                }
            }
            if (path.empty())
                return usage(2);
            return cmdSummarize(path, filter, showAll);
        }
        if (cmd == "diff") {
            if (argc != 4)
                return usage(2);
            return cmdDiff(argv[2], argv[3]);
        }
        return usage(2);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "tacsim-stats: %s\n", e.what());
        return 1;
    }
}
