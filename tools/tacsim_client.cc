/**
 * @file
 * tacsim-client: command-line client for a tacsim-served daemon.
 *
 *   submit   POST one job spec and (with --wait) poll it to completion
 *   result   fetch the canonical stats dump for a point key
 *   sweep    submit many workload specs under one shared config, poll
 *            them all, and print a summary table
 *   health   GET /healthz
 *   metrics  GET /metrics
 *
 * The client is deliberately thin: it builds the JSON body, speaks the
 * same one-request-per-connection HTTP/1.1 the daemon does, and lets
 * the daemon do every piece of validation and hashing — the point_key
 * printed here is the daemon's, so a client and a local SweepRunner
 * pointed at the same cache directory agree by construction.
 */

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/json.hh"

namespace {

using tacsim::serve::JsonObject;
using tacsim::serve::JsonValue;
using tacsim::serve::parseJson;

int
usage(int code)
{
    std::fprintf(
        stderr,
        "usage: tacsim-client [--host H] [--port N] <command> ...\n"
        "\n"
        "  submit --spec S [--spec S ...] [--instructions N]\n"
        "         [--warmup N] [--config JSON] [--wait [--poll-ms N]]\n"
        "      Submit one job (multiple --spec = one per hardware\n"
        "      thread). Prints the job-status JSON; with --wait, polls\n"
        "      until done/failed and prints the final status.\n"
        "  result --key HEX64\n"
        "      Print the canonical stats dump for a point key.\n"
        "  sweep [--instructions N] [--warmup N] [--config JSON]\n"
        "        [--poll-ms N] SPEC...\n"
        "      Submit each SPEC as its own job, wait for all, print\n"
        "      'spec point_key cached ipc' per line.\n"
        "  health | metrics\n");
    return code;
}

struct HttpReply
{
    int status = 0;
    std::string body;
};

/** One-shot HTTP exchange (Connection: close, read to EOF). */
HttpReply
httpExchange(const std::string &host, std::uint16_t port,
             const std::string &method, const std::string &target,
             const std::string &body)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw std::runtime_error("socket() failed");

    struct sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        throw std::runtime_error("bad host address " + host);
    }
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const std::string err = std::strerror(errno);
        ::close(fd);
        throw std::runtime_error("cannot connect to " + host + ":" +
                                 std::to_string(port) + ": " + err);
    }

    std::string req = method + " " + target + " HTTP/1.1\r\n";
    req += "Host: " + host + "\r\n";
    if (!body.empty())
        req += "Content-Type: application/json\r\n";
    req += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    req += "Connection: close\r\n\r\n";
    req += body;

    std::size_t off = 0;
    while (off < req.size()) {
        const ssize_t n = ::send(fd, req.data() + off, req.size() - off,
                                 MSG_NOSIGNAL);
        if (n <= 0) {
            ::close(fd);
            throw std::runtime_error("send() failed");
        }
        off += static_cast<std::size_t>(n);
    }

    std::string raw;
    char chunk[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            break;
        raw.append(chunk, static_cast<std::size_t>(n));
    }
    ::close(fd);

    HttpReply reply;
    const std::size_t split = raw.find("\r\n\r\n");
    if (split == std::string::npos)
        throw std::runtime_error("malformed HTTP response");
    // Status line: HTTP/1.1 NNN Reason
    const std::size_t sp = raw.find(' ');
    if (sp == std::string::npos || sp + 4 > split)
        throw std::runtime_error("malformed HTTP status line");
    reply.status = std::atoi(raw.c_str() + sp + 1);
    reply.body = raw.substr(split + 4);
    return reply;
}

void
sleepMs(unsigned ms)
{
    struct timespec ts{};
    ts.tv_sec = ms / 1000;
    ts.tv_nsec = static_cast<long>(ms % 1000) * 1000000L;
    ::nanosleep(&ts, nullptr);
}

struct Options
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::vector<std::string> specs;
    std::uint64_t instructions = 0;
    std::uint64_t warmup = 0;
    std::string config; ///< raw JSON text for the "config" member
    std::string key;
    bool wait = false;
    unsigned pollMs = 200;
};

std::string
jobBody(const Options &opt, const std::vector<std::string> &specs)
{
    JsonObject o;
    if (specs.size() == 1) {
        o["spec"] = JsonValue(specs[0]);
    } else {
        tacsim::serve::JsonArray arr;
        for (const std::string &s : specs)
            arr.push_back(JsonValue(s));
        o["spec"] = JsonValue(std::move(arr));
    }
    if (opt.instructions != 0)
        o["instructions"] = JsonValue(opt.instructions);
    if (opt.warmup != 0)
        o["warmup"] = JsonValue(opt.warmup);
    if (!opt.config.empty())
        o["config"] = parseJson(opt.config); // validated client-side too
    return JsonValue(std::move(o)).dump();
}

/** Submit one body; returns the parsed status object. */
JsonValue
submitJob(const Options &opt, const std::string &body)
{
    const HttpReply r =
        httpExchange(opt.host, opt.port, "POST", "/jobs", body);
    if (r.status != 200)
        throw std::runtime_error("submission rejected (" +
                                 std::to_string(r.status) +
                                 "): " + r.body);
    return parseJson(r.body);
}

/** Poll /jobs/<id> until the state is terminal; returns the final
 *  status object. */
JsonValue
pollJob(const Options &opt, std::uint64_t id)
{
    for (;;) {
        const HttpReply r =
            httpExchange(opt.host, opt.port, "GET",
                         "/jobs/" + std::to_string(id), "");
        if (r.status != 200)
            throw std::runtime_error("poll failed (" +
                                     std::to_string(r.status) +
                                     "): " + r.body);
        JsonValue v = parseJson(r.body);
        const std::string &state = v.at("status").asString();
        if (state == "done" || state == "failed")
            return v;
        sleepMs(opt.pollMs);
    }
}

int
cmdSubmit(const Options &opt)
{
    JsonValue status = submitJob(opt, jobBody(opt, opt.specs));
    if (opt.wait &&
        status.at("status").asString() != "done" &&
        status.at("status").asString() != "failed")
        status = pollJob(opt, status.at("id").asU64());
    std::printf("%s\n", status.dump().c_str());
    return status.at("status").asString() == "failed" ? 1 : 0;
}

int
cmdResult(const Options &opt)
{
    const HttpReply r = httpExchange(opt.host, opt.port, "GET",
                                     "/results/" + opt.key, "");
    if (r.status != 200) {
        std::fprintf(stderr, "tacsim-client: %s\n", r.body.c_str());
        return 1;
    }
    std::fwrite(r.body.data(), 1, r.body.size(), stdout);
    return 0;
}

int
cmdSweep(const Options &opt)
{
    struct Pending
    {
        std::string spec;
        std::uint64_t id = 0;
    };
    std::vector<Pending> pending;
    for (const std::string &spec : opt.specs) {
        JsonValue status =
            submitJob(opt, jobBody(opt, {spec}));
        pending.push_back({spec, status.at("id").asU64()});
    }

    int rc = 0;
    for (const Pending &p : pending) {
        const JsonValue v = pollJob(opt, p.id);
        if (v.at("status").asString() == "failed") {
            std::printf("%s FAILED: %s\n", p.spec.c_str(),
                        v.at("error").asString().c_str());
            rc = 1;
            continue;
        }
        std::printf("%s %s %s %.4f\n", p.spec.c_str(),
                    v.at("point_key").asString().c_str(),
                    v.at("cached").asBool() ? "cached" : "simulated",
                    v.at("ipc").asNumber());
    }
    return rc;
}

int
cmdGetText(const Options &opt, const char *target)
{
    const HttpReply r =
        httpExchange(opt.host, opt.port, "GET", target, "");
    std::fwrite(r.body.data(), 1, r.body.size(), stdout);
    return r.status == 200 ? 0 : 1;
}

bool
parseU64(const char *s, std::uint64_t &out)
{
    char *end = nullptr;
    out = std::strtoull(s, &end, 10);
    return end != s && *end == '\0';
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    std::string command;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool hasValue = i + 1 < argc;
        std::uint64_t v = 0;
        if (arg == "--help" || arg == "-h") {
            return usage(0);
        } else if (arg == "--host" && hasValue) {
            opt.host = argv[++i];
        } else if (arg == "--port" && hasValue) {
            if (!parseU64(argv[++i], v) || v == 0 || v > 65535) {
                std::fprintf(stderr, "tacsim-client: bad --port\n");
                return 2;
            }
            opt.port = static_cast<std::uint16_t>(v);
        } else if (arg == "--spec" && hasValue) {
            opt.specs.push_back(argv[++i]);
        } else if (arg == "--instructions" && hasValue) {
            if (!parseU64(argv[++i], opt.instructions))
                return usage(2);
        } else if (arg == "--warmup" && hasValue) {
            if (!parseU64(argv[++i], opt.warmup))
                return usage(2);
        } else if (arg == "--config" && hasValue) {
            opt.config = argv[++i];
        } else if (arg == "--key" && hasValue) {
            opt.key = argv[++i];
        } else if (arg == "--wait") {
            opt.wait = true;
        } else if (arg == "--poll-ms" && hasValue) {
            if (!parseU64(argv[++i], v) || v == 0 || v > 60000)
                return usage(2);
            opt.pollMs = static_cast<unsigned>(v);
        } else if (command.empty() && arg[0] != '-') {
            command = arg;
        } else if (command == "sweep" && arg[0] != '-') {
            opt.specs.push_back(arg);
        } else {
            std::fprintf(stderr, "tacsim-client: unknown option '%s'\n",
                         arg.c_str());
            return usage(2);
        }
    }

    if (command.empty())
        return usage(2);
    if (opt.port == 0) {
        std::fprintf(stderr, "tacsim-client: --port is required\n");
        return 2;
    }

    try {
        if (command == "submit") {
            if (opt.specs.empty()) {
                std::fprintf(stderr,
                             "tacsim-client: submit needs --spec\n");
                return 2;
            }
            return cmdSubmit(opt);
        }
        if (command == "result") {
            if (opt.key.empty()) {
                std::fprintf(stderr,
                             "tacsim-client: result needs --key\n");
                return 2;
            }
            return cmdResult(opt);
        }
        if (command == "sweep") {
            if (opt.specs.empty()) {
                std::fprintf(stderr,
                             "tacsim-client: sweep needs specs\n");
                return 2;
            }
            return cmdSweep(opt);
        }
        if (command == "health")
            return cmdGetText(opt, "/healthz");
        if (command == "metrics")
            return cmdGetText(opt, "/metrics");
        std::fprintf(stderr, "tacsim-client: unknown command '%s'\n",
                     command.c_str());
        return usage(2);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "tacsim-client: %s\n", e.what());
        return 1;
    }
}
