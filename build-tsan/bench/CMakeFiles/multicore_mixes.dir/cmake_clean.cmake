file(REMOVE_RECURSE
  "CMakeFiles/multicore_mixes.dir/multicore_mixes.cc.o"
  "CMakeFiles/multicore_mixes.dir/multicore_mixes.cc.o.d"
  "multicore_mixes"
  "multicore_mixes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicore_mixes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
