# Empty dependencies file for multicore_mixes.
# This may be replaced when dependencies are built.
