file(REMOVE_RECURSE
  "CMakeFiles/fig12_newsign.dir/fig12_newsign.cc.o"
  "CMakeFiles/fig12_newsign.dir/fig12_newsign.cc.o.d"
  "fig12_newsign"
  "fig12_newsign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_newsign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
