# Empty compiler generated dependencies file for fig12_newsign.
# This may be replaced when dependencies are built.
