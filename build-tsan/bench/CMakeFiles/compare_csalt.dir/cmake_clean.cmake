file(REMOVE_RECURSE
  "CMakeFiles/compare_csalt.dir/compare_csalt.cc.o"
  "CMakeFiles/compare_csalt.dir/compare_csalt.cc.o.d"
  "compare_csalt"
  "compare_csalt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_csalt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
