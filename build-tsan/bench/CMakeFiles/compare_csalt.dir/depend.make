# Empty dependencies file for compare_csalt.
# This may be replaced when dependencies are built.
