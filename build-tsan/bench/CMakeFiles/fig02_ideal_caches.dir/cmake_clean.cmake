file(REMOVE_RECURSE
  "CMakeFiles/fig02_ideal_caches.dir/fig02_ideal_caches.cc.o"
  "CMakeFiles/fig02_ideal_caches.dir/fig02_ideal_caches.cc.o.d"
  "fig02_ideal_caches"
  "fig02_ideal_caches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_ideal_caches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
