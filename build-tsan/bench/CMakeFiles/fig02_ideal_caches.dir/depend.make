# Empty dependencies file for fig02_ideal_caches.
# This may be replaced when dependencies are built.
