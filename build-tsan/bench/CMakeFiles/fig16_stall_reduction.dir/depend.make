# Empty dependencies file for fig16_stall_reduction.
# This may be replaced when dependencies are built.
