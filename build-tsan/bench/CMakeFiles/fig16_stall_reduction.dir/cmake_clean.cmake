file(REMOVE_RECURSE
  "CMakeFiles/fig16_stall_reduction.dir/fig16_stall_reduction.cc.o"
  "CMakeFiles/fig16_stall_reduction.dir/fig16_stall_reduction.cc.o.d"
  "fig16_stall_reduction"
  "fig16_stall_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_stall_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
