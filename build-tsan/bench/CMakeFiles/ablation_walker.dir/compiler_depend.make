# Empty compiler generated dependencies file for ablation_walker.
# This may be replaced when dependencies are built.
