file(REMOVE_RECURSE
  "CMakeFiles/ablation_walker.dir/ablation_walker.cc.o"
  "CMakeFiles/ablation_walker.dir/ablation_walker.cc.o.d"
  "ablation_walker"
  "ablation_walker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_walker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
