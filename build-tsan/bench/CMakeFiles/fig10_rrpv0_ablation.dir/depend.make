# Empty dependencies file for fig10_rrpv0_ablation.
# This may be replaced when dependencies are built.
