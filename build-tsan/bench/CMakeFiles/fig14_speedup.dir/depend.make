# Empty dependencies file for fig14_speedup.
# This may be replaced when dependencies are built.
