file(REMOVE_RECURSE
  "CMakeFiles/fig14_speedup.dir/fig14_speedup.cc.o"
  "CMakeFiles/fig14_speedup.dir/fig14_speedup.cc.o.d"
  "fig14_speedup"
  "fig14_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
