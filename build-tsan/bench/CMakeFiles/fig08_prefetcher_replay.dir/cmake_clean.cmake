file(REMOVE_RECURSE
  "CMakeFiles/fig08_prefetcher_replay.dir/fig08_prefetcher_replay.cc.o"
  "CMakeFiles/fig08_prefetcher_replay.dir/fig08_prefetcher_replay.cc.o.d"
  "fig08_prefetcher_replay"
  "fig08_prefetcher_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_prefetcher_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
