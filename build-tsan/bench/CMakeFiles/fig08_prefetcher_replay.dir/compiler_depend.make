# Empty compiler generated dependencies file for fig08_prefetcher_replay.
# This may be replaced when dependencies are built.
