# Empty dependencies file for fig04_translation_mpki.
# This may be replaced when dependencies are built.
