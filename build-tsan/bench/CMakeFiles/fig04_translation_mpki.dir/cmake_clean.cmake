file(REMOVE_RECURSE
  "CMakeFiles/fig04_translation_mpki.dir/fig04_translation_mpki.cc.o"
  "CMakeFiles/fig04_translation_mpki.dir/fig04_translation_mpki.cc.o.d"
  "fig04_translation_mpki"
  "fig04_translation_mpki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_translation_mpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
