file(REMOVE_RECURSE
  "CMakeFiles/fig05_recall_translation.dir/fig05_recall_translation.cc.o"
  "CMakeFiles/fig05_recall_translation.dir/fig05_recall_translation.cc.o.d"
  "fig05_recall_translation"
  "fig05_recall_translation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_recall_translation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
