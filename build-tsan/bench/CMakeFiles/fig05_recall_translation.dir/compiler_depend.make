# Empty compiler generated dependencies file for fig05_recall_translation.
# This may be replaced when dependencies are built.
