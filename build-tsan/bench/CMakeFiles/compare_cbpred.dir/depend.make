# Empty dependencies file for compare_cbpred.
# This may be replaced when dependencies are built.
