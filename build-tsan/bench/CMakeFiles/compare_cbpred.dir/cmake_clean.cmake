file(REMOVE_RECURSE
  "CMakeFiles/compare_cbpred.dir/compare_cbpred.cc.o"
  "CMakeFiles/compare_cbpred.dir/compare_cbpred.cc.o.d"
  "compare_cbpred"
  "compare_cbpred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_cbpred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
