# Empty dependencies file for fig07_recall_replay.
# This may be replaced when dependencies are built.
