file(REMOVE_RECURSE
  "CMakeFiles/fig07_recall_replay.dir/fig07_recall_replay.cc.o"
  "CMakeFiles/fig07_recall_replay.dir/fig07_recall_replay.cc.o.d"
  "fig07_recall_replay"
  "fig07_recall_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_recall_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
