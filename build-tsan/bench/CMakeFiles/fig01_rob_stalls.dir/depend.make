# Empty dependencies file for fig01_rob_stalls.
# This may be replaced when dependencies are built.
