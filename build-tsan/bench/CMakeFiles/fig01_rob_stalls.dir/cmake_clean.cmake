file(REMOVE_RECURSE
  "CMakeFiles/fig01_rob_stalls.dir/fig01_rob_stalls.cc.o"
  "CMakeFiles/fig01_rob_stalls.dir/fig01_rob_stalls.cc.o.d"
  "fig01_rob_stalls"
  "fig01_rob_stalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_rob_stalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
