# Empty compiler generated dependencies file for fig03_response_distribution.
# This may be replaced when dependencies are built.
