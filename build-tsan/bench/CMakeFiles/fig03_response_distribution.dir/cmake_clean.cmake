file(REMOVE_RECURSE
  "CMakeFiles/fig03_response_distribution.dir/fig03_response_distribution.cc.o"
  "CMakeFiles/fig03_response_distribution.dir/fig03_response_distribution.cc.o.d"
  "fig03_response_distribution"
  "fig03_response_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_response_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
