file(REMOVE_RECURSE
  "CMakeFiles/fig06_replay_mpki.dir/fig06_replay_mpki.cc.o"
  "CMakeFiles/fig06_replay_mpki.dir/fig06_replay_mpki.cc.o.d"
  "fig06_replay_mpki"
  "fig06_replay_mpki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_replay_mpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
