# Empty compiler generated dependencies file for fig06_replay_mpki.
# This may be replaced when dependencies are built.
