# Empty compiler generated dependencies file for ablation_atp.
# This may be replaced when dependencies are built.
