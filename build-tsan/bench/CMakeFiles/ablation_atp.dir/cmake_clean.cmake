file(REMOVE_RECURSE
  "CMakeFiles/ablation_atp.dir/ablation_atp.cc.o"
  "CMakeFiles/ablation_atp.dir/ablation_atp.cc.o.d"
  "ablation_atp"
  "ablation_atp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_atp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
