# Empty compiler generated dependencies file for fig18_stlb_recall.
# This may be replaced when dependencies are built.
