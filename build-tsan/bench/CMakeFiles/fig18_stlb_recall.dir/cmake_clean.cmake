file(REMOVE_RECURSE
  "CMakeFiles/fig18_stlb_recall.dir/fig18_stlb_recall.cc.o"
  "CMakeFiles/fig18_stlb_recall.dir/fig18_stlb_recall.cc.o.d"
  "fig18_stlb_recall"
  "fig18_stlb_recall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_stlb_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
