file(REMOVE_RECURSE
  "CMakeFiles/fig19_stlb_sensitivity.dir/fig19_stlb_sensitivity.cc.o"
  "CMakeFiles/fig19_stlb_sensitivity.dir/fig19_stlb_sensitivity.cc.o.d"
  "fig19_stlb_sensitivity"
  "fig19_stlb_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_stlb_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
