# Empty compiler generated dependencies file for fig19_stlb_sensitivity.
# This may be replaced when dependencies are built.
