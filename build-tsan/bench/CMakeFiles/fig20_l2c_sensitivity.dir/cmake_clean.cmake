file(REMOVE_RECURSE
  "CMakeFiles/fig20_l2c_sensitivity.dir/fig20_l2c_sensitivity.cc.o"
  "CMakeFiles/fig20_l2c_sensitivity.dir/fig20_l2c_sensitivity.cc.o.d"
  "fig20_l2c_sensitivity"
  "fig20_l2c_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_l2c_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
