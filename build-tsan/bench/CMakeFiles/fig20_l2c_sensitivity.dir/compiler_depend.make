# Empty compiler generated dependencies file for fig20_l2c_sensitivity.
# This may be replaced when dependencies are built.
