file(REMOVE_RECURSE
  "CMakeFiles/fig17_smt.dir/fig17_smt.cc.o"
  "CMakeFiles/fig17_smt.dir/fig17_smt.cc.o.d"
  "fig17_smt"
  "fig17_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
