# Empty compiler generated dependencies file for fig17_smt.
# This may be replaced when dependencies are built.
