# Empty compiler generated dependencies file for fig15_with_prefetchers.
# This may be replaced when dependencies are built.
