file(REMOVE_RECURSE
  "CMakeFiles/fig15_with_prefetchers.dir/fig15_with_prefetchers.cc.o"
  "CMakeFiles/fig15_with_prefetchers.dir/fig15_with_prefetchers.cc.o.d"
  "fig15_with_prefetchers"
  "fig15_with_prefetchers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_with_prefetchers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
