# Empty compiler generated dependencies file for fig21_llc_sensitivity.
# This may be replaced when dependencies are built.
