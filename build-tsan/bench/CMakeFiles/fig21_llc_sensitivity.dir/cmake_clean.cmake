file(REMOVE_RECURSE
  "CMakeFiles/fig21_llc_sensitivity.dir/fig21_llc_sensitivity.cc.o"
  "CMakeFiles/fig21_llc_sensitivity.dir/fig21_llc_sensitivity.cc.o.d"
  "fig21_llc_sensitivity"
  "fig21_llc_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_llc_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
