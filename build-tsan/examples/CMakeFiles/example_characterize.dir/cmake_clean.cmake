file(REMOVE_RECURSE
  "CMakeFiles/example_characterize.dir/characterize.cc.o"
  "CMakeFiles/example_characterize.dir/characterize.cc.o.d"
  "example_characterize"
  "example_characterize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_characterize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
