# Empty dependencies file for example_characterize.
# This may be replaced when dependencies are built.
