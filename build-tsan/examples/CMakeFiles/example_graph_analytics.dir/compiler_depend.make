# Empty compiler generated dependencies file for example_graph_analytics.
# This may be replaced when dependencies are built.
