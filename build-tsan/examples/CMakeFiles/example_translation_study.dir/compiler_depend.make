# Empty compiler generated dependencies file for example_translation_study.
# This may be replaced when dependencies are built.
