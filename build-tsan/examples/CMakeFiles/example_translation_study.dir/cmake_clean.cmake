file(REMOVE_RECURSE
  "CMakeFiles/example_translation_study.dir/translation_study.cc.o"
  "CMakeFiles/example_translation_study.dir/translation_study.cc.o.d"
  "example_translation_study"
  "example_translation_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_translation_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
