
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_belady_reference.cc" "tests/CMakeFiles/tacsim_tests.dir/test_belady_reference.cc.o" "gcc" "tests/CMakeFiles/tacsim_tests.dir/test_belady_reference.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/tacsim_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/tacsim_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/tacsim_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/tacsim_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_core.cc" "tests/CMakeFiles/tacsim_tests.dir/test_core.cc.o" "gcc" "tests/CMakeFiles/tacsim_tests.dir/test_core.cc.o.d"
  "/root/repo/tests/test_dram.cc" "tests/CMakeFiles/tacsim_tests.dir/test_dram.cc.o" "gcc" "tests/CMakeFiles/tacsim_tests.dir/test_dram.cc.o.d"
  "/root/repo/tests/test_event_queue.cc" "tests/CMakeFiles/tacsim_tests.dir/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/tacsim_tests.dir/test_event_queue.cc.o.d"
  "/root/repo/tests/test_invariants.cc" "tests/CMakeFiles/tacsim_tests.dir/test_invariants.cc.o" "gcc" "tests/CMakeFiles/tacsim_tests.dir/test_invariants.cc.o.d"
  "/root/repo/tests/test_page_table.cc" "tests/CMakeFiles/tacsim_tests.dir/test_page_table.cc.o" "gcc" "tests/CMakeFiles/tacsim_tests.dir/test_page_table.cc.o.d"
  "/root/repo/tests/test_prefetchers.cc" "tests/CMakeFiles/tacsim_tests.dir/test_prefetchers.cc.o" "gcc" "tests/CMakeFiles/tacsim_tests.dir/test_prefetchers.cc.o.d"
  "/root/repo/tests/test_psc.cc" "tests/CMakeFiles/tacsim_tests.dir/test_psc.cc.o" "gcc" "tests/CMakeFiles/tacsim_tests.dir/test_psc.cc.o.d"
  "/root/repo/tests/test_ptw.cc" "tests/CMakeFiles/tacsim_tests.dir/test_ptw.cc.o" "gcc" "tests/CMakeFiles/tacsim_tests.dir/test_ptw.cc.o.d"
  "/root/repo/tests/test_repl_hawkeye.cc" "tests/CMakeFiles/tacsim_tests.dir/test_repl_hawkeye.cc.o" "gcc" "tests/CMakeFiles/tacsim_tests.dir/test_repl_hawkeye.cc.o.d"
  "/root/repo/tests/test_repl_misc.cc" "tests/CMakeFiles/tacsim_tests.dir/test_repl_misc.cc.o" "gcc" "tests/CMakeFiles/tacsim_tests.dir/test_repl_misc.cc.o.d"
  "/root/repo/tests/test_repl_rrip.cc" "tests/CMakeFiles/tacsim_tests.dir/test_repl_rrip.cc.o" "gcc" "tests/CMakeFiles/tacsim_tests.dir/test_repl_rrip.cc.o.d"
  "/root/repo/tests/test_repl_ship.cc" "tests/CMakeFiles/tacsim_tests.dir/test_repl_ship.cc.o" "gcc" "tests/CMakeFiles/tacsim_tests.dir/test_repl_ship.cc.o.d"
  "/root/repo/tests/test_smoke.cc" "tests/CMakeFiles/tacsim_tests.dir/test_smoke.cc.o" "gcc" "tests/CMakeFiles/tacsim_tests.dir/test_smoke.cc.o.d"
  "/root/repo/tests/test_sweep.cc" "tests/CMakeFiles/tacsim_tests.dir/test_sweep.cc.o" "gcc" "tests/CMakeFiles/tacsim_tests.dir/test_sweep.cc.o.d"
  "/root/repo/tests/test_system.cc" "tests/CMakeFiles/tacsim_tests.dir/test_system.cc.o" "gcc" "tests/CMakeFiles/tacsim_tests.dir/test_system.cc.o.d"
  "/root/repo/tests/test_tlb.cc" "tests/CMakeFiles/tacsim_tests.dir/test_tlb.cc.o" "gcc" "tests/CMakeFiles/tacsim_tests.dir/test_tlb.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/tacsim_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/tacsim_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/tacsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
