# Empty compiler generated dependencies file for tacsim_tests.
# This may be replaced when dependencies are built.
