# Empty dependencies file for tacsim.
# This may be replaced when dependencies are built.
