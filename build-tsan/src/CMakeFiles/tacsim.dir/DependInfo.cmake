
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache.cc" "src/CMakeFiles/tacsim.dir/cache/cache.cc.o" "gcc" "src/CMakeFiles/tacsim.dir/cache/cache.cc.o.d"
  "/root/repo/src/cache/repl/basic.cc" "src/CMakeFiles/tacsim.dir/cache/repl/basic.cc.o" "gcc" "src/CMakeFiles/tacsim.dir/cache/repl/basic.cc.o.d"
  "/root/repo/src/cache/repl/csalt.cc" "src/CMakeFiles/tacsim.dir/cache/repl/csalt.cc.o" "gcc" "src/CMakeFiles/tacsim.dir/cache/repl/csalt.cc.o.d"
  "/root/repo/src/cache/repl/deadblock.cc" "src/CMakeFiles/tacsim.dir/cache/repl/deadblock.cc.o" "gcc" "src/CMakeFiles/tacsim.dir/cache/repl/deadblock.cc.o.d"
  "/root/repo/src/cache/repl/factory.cc" "src/CMakeFiles/tacsim.dir/cache/repl/factory.cc.o" "gcc" "src/CMakeFiles/tacsim.dir/cache/repl/factory.cc.o.d"
  "/root/repo/src/cache/repl/hawkeye.cc" "src/CMakeFiles/tacsim.dir/cache/repl/hawkeye.cc.o" "gcc" "src/CMakeFiles/tacsim.dir/cache/repl/hawkeye.cc.o.d"
  "/root/repo/src/cache/repl/rrip.cc" "src/CMakeFiles/tacsim.dir/cache/repl/rrip.cc.o" "gcc" "src/CMakeFiles/tacsim.dir/cache/repl/rrip.cc.o.d"
  "/root/repo/src/cache/repl/ship.cc" "src/CMakeFiles/tacsim.dir/cache/repl/ship.cc.o" "gcc" "src/CMakeFiles/tacsim.dir/cache/repl/ship.cc.o.d"
  "/root/repo/src/core/core.cc" "src/CMakeFiles/tacsim.dir/core/core.cc.o" "gcc" "src/CMakeFiles/tacsim.dir/core/core.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/CMakeFiles/tacsim.dir/mem/dram.cc.o" "gcc" "src/CMakeFiles/tacsim.dir/mem/dram.cc.o.d"
  "/root/repo/src/prefetch/bingo.cc" "src/CMakeFiles/tacsim.dir/prefetch/bingo.cc.o" "gcc" "src/CMakeFiles/tacsim.dir/prefetch/bingo.cc.o.d"
  "/root/repo/src/prefetch/factory.cc" "src/CMakeFiles/tacsim.dir/prefetch/factory.cc.o" "gcc" "src/CMakeFiles/tacsim.dir/prefetch/factory.cc.o.d"
  "/root/repo/src/prefetch/ipcp.cc" "src/CMakeFiles/tacsim.dir/prefetch/ipcp.cc.o" "gcc" "src/CMakeFiles/tacsim.dir/prefetch/ipcp.cc.o.d"
  "/root/repo/src/prefetch/isb.cc" "src/CMakeFiles/tacsim.dir/prefetch/isb.cc.o" "gcc" "src/CMakeFiles/tacsim.dir/prefetch/isb.cc.o.d"
  "/root/repo/src/prefetch/simple.cc" "src/CMakeFiles/tacsim.dir/prefetch/simple.cc.o" "gcc" "src/CMakeFiles/tacsim.dir/prefetch/simple.cc.o.d"
  "/root/repo/src/prefetch/spp.cc" "src/CMakeFiles/tacsim.dir/prefetch/spp.cc.o" "gcc" "src/CMakeFiles/tacsim.dir/prefetch/spp.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/CMakeFiles/tacsim.dir/sim/config.cc.o" "gcc" "src/CMakeFiles/tacsim.dir/sim/config.cc.o.d"
  "/root/repo/src/sim/runner.cc" "src/CMakeFiles/tacsim.dir/sim/runner.cc.o" "gcc" "src/CMakeFiles/tacsim.dir/sim/runner.cc.o.d"
  "/root/repo/src/sim/sweep.cc" "src/CMakeFiles/tacsim.dir/sim/sweep.cc.o" "gcc" "src/CMakeFiles/tacsim.dir/sim/sweep.cc.o.d"
  "/root/repo/src/sim/system.cc" "src/CMakeFiles/tacsim.dir/sim/system.cc.o" "gcc" "src/CMakeFiles/tacsim.dir/sim/system.cc.o.d"
  "/root/repo/src/vm/psc.cc" "src/CMakeFiles/tacsim.dir/vm/psc.cc.o" "gcc" "src/CMakeFiles/tacsim.dir/vm/psc.cc.o.d"
  "/root/repo/src/vm/ptw.cc" "src/CMakeFiles/tacsim.dir/vm/ptw.cc.o" "gcc" "src/CMakeFiles/tacsim.dir/vm/ptw.cc.o.d"
  "/root/repo/src/vm/tlb.cc" "src/CMakeFiles/tacsim.dir/vm/tlb.cc.o" "gcc" "src/CMakeFiles/tacsim.dir/vm/tlb.cc.o.d"
  "/root/repo/src/workloads/benchmarks.cc" "src/CMakeFiles/tacsim.dir/workloads/benchmarks.cc.o" "gcc" "src/CMakeFiles/tacsim.dir/workloads/benchmarks.cc.o.d"
  "/root/repo/src/workloads/canneal.cc" "src/CMakeFiles/tacsim.dir/workloads/canneal.cc.o" "gcc" "src/CMakeFiles/tacsim.dir/workloads/canneal.cc.o.d"
  "/root/repo/src/workloads/graph.cc" "src/CMakeFiles/tacsim.dir/workloads/graph.cc.o" "gcc" "src/CMakeFiles/tacsim.dir/workloads/graph.cc.o.d"
  "/root/repo/src/workloads/mcf.cc" "src/CMakeFiles/tacsim.dir/workloads/mcf.cc.o" "gcc" "src/CMakeFiles/tacsim.dir/workloads/mcf.cc.o.d"
  "/root/repo/src/workloads/xalanc.cc" "src/CMakeFiles/tacsim.dir/workloads/xalanc.cc.o" "gcc" "src/CMakeFiles/tacsim.dir/workloads/xalanc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
