file(REMOVE_RECURSE
  "libtacsim.a"
)
