/**
 * @file
 * Policy-explorer example: sweeps every replacement-policy combination
 * (L2C x LLC) on one benchmark and prints IPC plus the translation and
 * replay MPKIs, showing why the paper picks DRRIP@L2C + SHiP@LLC as the
 * strong baseline — and what the T-variants change.
 *
 * Usage: example_policy_explorer [benchmark]
 */

#include <cstdio>
#include <cstring>

#include "sim/runner.hh"

int
main(int argc, char **argv)
{
    using namespace tacsim;

    Benchmark bench = Benchmark::pr;
    if (argc > 1) {
        for (Benchmark b : kAllBenchmarks)
            if (benchmarkName(b) == argv[1])
                bench = b;
    }

    struct LlcChoice
    {
        const char *name;
        PolicyKind kind;
        ReplOpts opts;
    };
    const LlcChoice llcs[] = {
        {"LRU", PolicyKind::LRU, {}},
        {"SRRIP", PolicyKind::SRRIP, {}},
        {"DRRIP", PolicyKind::DRRIP, {}},
        {"SHiP", PolicyKind::SHiP, {}},
        {"Hawkeye", PolicyKind::Hawkeye, {}},
        {"T-SHiP", PolicyKind::SHiP, {true, false, true, false}},
        {"T-Hawkeye", PolicyKind::Hawkeye, {true, false, true, false}},
    };
    const std::pair<const char *, bool> l2s[] = {
        {"DRRIP", false},
        {"T-DRRIP", true},
    };

    std::printf("benchmark: %s\n", benchmarkName(bench).c_str());
    std::printf("%-10s %-10s | %7s | %9s %9s %9s\n", "L2C", "LLC", "IPC",
                "LLC.ptl1", "LLC.rep", "LLC.nrep");

    for (auto [l2name, tdrrip] : l2s) {
        for (const LlcChoice &llc : llcs) {
            SystemConfig cfg;
            if (tdrrip) {
                cfg.l2Opts.translationRrpv0 = true;
                cfg.l2Opts.replayEvictFast = true;
            }
            cfg.llcPolicy = llc.kind;
            cfg.llcOpts = llc.opts;
            RunResult r = runBenchmark(cfg, bench);
            std::printf("%-10s %-10s | %7.3f | %9.3f %9.3f %9.3f\n",
                        l2name, llc.name, r.ipc, r.llcPtl1Mpki,
                        r.llcReplayMpki, r.llcNonReplayMpki);
        }
    }
    return 0;
}
