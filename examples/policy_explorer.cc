/**
 * @file
 * Policy-explorer example: sweeps every replacement-policy combination
 * (L2C x LLC) on one benchmark and prints IPC plus the translation and
 * replay MPKIs, showing why the paper picks DRRIP@L2C + SHiP@LLC as the
 * strong baseline — and what the T-variants change.
 *
 * The 14 configurations run in parallel on the SweepRunner (TACSIM_JOBS
 * workers); TACSIM_JSON_OUT=<path> writes the table as a JSON report.
 *
 * Usage: example_policy_explorer [benchmark]
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sim/sweep.hh"

int
main(int argc, char **argv)
{
    using namespace tacsim;

    Benchmark bench = Benchmark::pr;
    if (argc > 1) {
        for (Benchmark b : kAllBenchmarks)
            if (benchmarkName(b) == argv[1])
                bench = b;
    }

    struct LlcChoice
    {
        const char *name;
        PolicyKind kind;
        ReplOpts opts;
    };
    const LlcChoice llcs[] = {
        {"LRU", PolicyKind::LRU, {}},
        {"SRRIP", PolicyKind::SRRIP, {}},
        {"DRRIP", PolicyKind::DRRIP, {}},
        {"SHiP", PolicyKind::SHiP, {}},
        {"Hawkeye", PolicyKind::Hawkeye, {}},
        {"T-SHiP", PolicyKind::SHiP, {true, false, true, false}},
        {"T-Hawkeye", PolicyKind::Hawkeye, {true, false, true, false}},
    };
    const std::pair<const char *, bool> l2s[] = {
        {"DRRIP", false},
        {"T-DRRIP", true},
    };

    auto makeConfig = [](bool tdrrip, const LlcChoice &llc) {
        SystemConfig cfg;
        if (tdrrip) {
            cfg.l2Opts.translationRrpv0 = true;
            cfg.l2Opts.replayEvictFast = true;
        }
        cfg.llcPolicy = llc.kind;
        cfg.llcOpts = llc.opts;
        return cfg;
    };

    // Phase 1: register all L2C x LLC combinations.
    SweepRunner sweep;
    for (auto [l2name, tdrrip] : l2s)
        for (const LlcChoice &llc : llcs)
            sweep.add(std::string(l2name) + "/" + llc.name,
                      makeConfig(tdrrip, llc), bench);

    // Phase 2: execute across the pool.
    std::printf("benchmark: %s (%zu configs on %u threads)\n",
                benchmarkName(bench).c_str(), sweep.points(),
                sweep.threadCount());
    sweep.run();

    // Phase 3: report in registration order.
    std::printf("%-10s %-10s | %7s | %9s %9s %9s\n", "L2C", "LLC", "IPC",
                "LLC.ptl1", "LLC.rep", "LLC.nrep");
    std::vector<ReportRow> rows;
    for (auto [l2name, tdrrip] : l2s) {
        for (const LlcChoice &llc : llcs) {
            const std::string key =
                std::string(l2name) + "/" + llc.name;
            const SweepOutcome *o = sweep.outcome(key);
            if (!o->ok) {
                std::printf("%-10s %-10s | FAILED: %s\n", l2name,
                            llc.name, o->error.c_str());
                continue;
            }
            const RunResult &r = o->result;
            std::printf("%-10s %-10s | %7.3f | %9.3f %9.3f %9.3f\n",
                        l2name, llc.name, r.ipc, r.llcPtl1Mpki,
                        r.llcReplayMpki, r.llcNonReplayMpki);
            rows.push_back({key, benchmarkName(bench), r.ipc,
                            std::nan(""), "IPC"});
        }
    }
    sweep.writeJsonFromEnv("policy_explorer", rows);
    return 0;
}
