/**
 * @file
 * Translation-path deep dive: for one benchmark, prints everything the
 * paper's motivation section measures — where leaf translations are
 * serviced (Fig. 3), page-table-walker behaviour (PSC hit levels, walk
 * latency distribution), STLB pressure, and what the full scheme
 * changes.
 *
 * Usage: example_translation_study [benchmark]
 */

#include <cstdio>

#include "sim/system.hh"
#include "sim/runner.hh"

using namespace tacsim;

namespace {

void
study(const char *tag, SystemConfig cfg, Benchmark bench)
{
    std::vector<std::unique_ptr<Workload>> w;
    w.push_back(makeWorkload(bench, cfg.seed));
    System sys(cfg, std::move(w));
    sys.warmup(defaultWarmup());
    sys.run(defaultInstructions());
    RunResult r = collectResult(sys, benchmarkName(bench));

    const PtwStats &ps = sys.ptw().stats();
    const PscStats &pscs = sys.ptw().pscStats();

    std::printf("--- %s ---\n", tag);
    std::printf("  IPC %.3f, STLB MPKI %.2f, walks %lu (merged %lu)\n",
                r.ipc, r.stlbMpki, (unsigned long)ps.walks,
                (unsigned long)ps.merged);
    std::printf("  leaf translation served by: L1D %.1f%%  L2C %.1f%%  "
                "LLC %.1f%%  DRAM %.1f%%  (on-chip %.1f%%)\n",
                r.leafL1D * 100, r.leafL2C * 100, r.leafLLC * 100,
                r.leafDram * 100, r.leafOnChipHitRate * 100);
    std::printf("  PSC skip levels: PSCL2 %lu  PSCL3 %lu  PSCL4 %lu  "
                "PSCL5 %lu  full-walk %lu\n",
                (unsigned long)pscs.hitsAtLevel[1],
                (unsigned long)pscs.hitsAtLevel[2],
                (unsigned long)pscs.hitsAtLevel[3],
                (unsigned long)pscs.hitsAtLevel[4],
                (unsigned long)pscs.fullMisses);
    std::printf("  walk latency: mean %.1f cycles, max %lu\n",
                ps.walkLatency.mean(),
                (unsigned long)ps.walkLatency.max());
    std::printf("  ROB stalls: T %lu  R %lu  N %lu cycles "
                "(T+R = %.1f%% of %lu)\n",
                (unsigned long)r.stallT, (unsigned long)r.stallR,
                (unsigned long)r.stallN,
                100.0 * double(r.stallT + r.stallR) / double(r.cycles),
                (unsigned long)r.cycles);
    if (r.atpIssued)
        std::printf("  ATP: issued %lu, full hits %lu (merged-late "
                    "prefetches hide partial latency)\n",
                    (unsigned long)r.atpIssued,
                    (unsigned long)r.atpUseful);
    if (r.tempoIssued)
        std::printf("  TEMPO: %lu DRAM-side replay prefetches\n",
                    (unsigned long)r.tempoIssued);
}

} // namespace

int
main(int argc, char **argv)
{
    Benchmark bench = Benchmark::mcf;
    if (argc > 1) {
        for (Benchmark b : kAllBenchmarks)
            if (benchmarkName(b) == argv[1])
                bench = b;
    }

    SystemConfig base;
    study("baseline: DRRIP @ L2C, SHiP @ LLC", base, bench);

    SystemConfig enh = base;
    TranslationAwareOptions opts;
    opts.tempo = true;
    applyTranslationAware(enh, opts);
    study("proposal: T-DRRIP + T-SHiP + ATP + TEMPO", enh, bench);
    return 0;
}
