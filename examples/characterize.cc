/**
 * @file
 * Characterization example: reproduces the metrics of the paper's
 * Table II for every benchmark stand-in on the baseline system
 * (DRRIP@L2, SHiP@LLC, no prefetching) and prints them next to the
 * published values. Useful for checking that each synthetic workload
 * lands in its intended STLB-MPKI band.
 */

#include <cstdio>

#include "sim/runner.hh"

int
main()
{
    using namespace tacsim;

    std::printf("%-10s %8s %8s | %8s %8s %8s | %8s %8s %8s | %6s\n",
                "bench", "STLBmpki", "(paper)", "L2.rep", "L2.nrep",
                "L2.ptl1", "LLC.rep", "LLC.nrep", "LLC.ptl1", "IPC");
    for (Benchmark b : kAllBenchmarks) {
        SystemConfig cfg;
        RunResult r = runBenchmark(cfg, b);
        const TableTwoRow &p = paperTableTwo(b);
        std::printf("%-10s %8.2f %8.2f | %8.2f %8.2f %8.2f | %8.2f %8.2f "
                    "%8.2f | %6.3f\n",
                    r.benchmark.c_str(), r.stlbMpki, p.stlbMpki,
                    r.l2ReplayMpki, r.l2NonReplayMpki, r.l2Ptl1Mpki,
                    r.llcReplayMpki, r.llcNonReplayMpki, r.llcPtl1Mpki,
                    r.ipc);
    }
    return 0;
}
