/**
 * @file
 * Graph-analytics example: the scenario that motivates the paper's
 * introduction. Runs the Ligra-class graph workloads (pr, cc, bf, radii)
 * on the baseline hierarchy and on the translation-aware hierarchy, and
 * reports where the time goes: ROB-head stall cycles split into
 * translation (T), replay (R) and other (N), plus the on-chip hit rate
 * for leaf translations.
 *
 * Usage: example_graph_analytics [instructions] [warmup]
 */

#include <cstdio>
#include <cstdlib>

#include "sim/runner.hh"

int
main(int argc, char **argv)
{
    using namespace tacsim;

    const std::uint64_t instr =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 400000;
    const std::uint64_t warm =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100000;

    const Benchmark graphs[] = {Benchmark::pr, Benchmark::cc,
                                Benchmark::bf, Benchmark::radii};

    std::printf("%-8s | %28s | %28s | %8s\n", "", "baseline (DRRIP+SHiP)",
                "translation-aware (+ATP)", "");
    std::printf("%-8s | %8s %8s %9s | %8s %8s %9s | %8s\n", "graph",
                "IPC", "T-stall%", "R-stall%", "IPC", "T-stall%",
                "R-stall%", "speedup");

    for (Benchmark b : graphs) {
        SystemConfig base;
        RunResult rb = runBenchmark(base, b, instr, warm);

        SystemConfig enh = base;
        TranslationAwareOptions opts;
        opts.tempo = true;
        applyTranslationAware(enh, opts);
        RunResult re = runBenchmark(enh, b, instr, warm);

        auto stallPct = [](const RunResult &r, std::uint64_t stall) {
            return r.cycles ? 100.0 * double(stall) / double(r.cycles)
                            : 0.0;
        };

        std::printf(
            "%-8s | %8.3f %8.2f %9.2f | %8.3f %8.2f %9.2f | %+7.2f%%\n",
            rb.benchmark.c_str(), rb.ipc, stallPct(rb, rb.stallT),
            stallPct(rb, rb.stallR), re.ipc, stallPct(re, re.stallT),
            stallPct(re, re.stallR), (speedup(rb, re) - 1) * 100);
    }

    std::printf("\nNote: replay-load stalls dominate graph analytics "
                "(paper Fig. 1); the translation-aware hierarchy "
                "attacks both components (paper Fig. 16).\n");
    return 0;
}
