/**
 * @file
 * Quickstart: build a Sunny-Cove-like system (paper Table I), run the
 * pr (PageRank) benchmark with and without the paper's translation-
 * aware enhancements (T-DRRIP + T-SHiP + ATP + TEMPO), and print the
 * speedup and the on-chip leaf-translation hit rate.
 */

#include <cstdio>

#include "sim/runner.hh"

int
main()
{
    using namespace tacsim;

    SystemConfig baseline; // Table I defaults: DRRIP @ L2C, SHiP @ LLC
    SystemConfig enhanced = baseline;
    TranslationAwareOptions opts;
    opts.tempo = true;
    applyTranslationAware(enhanced, opts);

    RunResult base = runBenchmark(baseline, Benchmark::pr);
    RunResult enh = runBenchmark(enhanced, Benchmark::pr);

    std::printf("pr: baseline IPC %.3f, enhanced IPC %.3f, "
                "speedup %+.2f%%\n",
                base.ipc, enh.ipc, (speedup(base, enh) - 1.0) * 100.0);
    std::printf("    leaf translations on-chip: %.1f%% -> %.1f%%\n",
                base.leafOnChipHitRate * 100,
                enh.leafOnChipHitRate * 100);
    return 0;
}
