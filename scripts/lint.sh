#!/usr/bin/env bash
# Static-analysis gate for tacsim:
#   1. clang-tidy over src/ using .clang-tidy (skipped with a notice when
#      clang-tidy is not installed, so the script stays usable in
#      gcc-only containers).
#   2. Source-level bans enforced with grep:
#        - raw assert( in src/ — use TACSIM_CHECK (always on) or
#          TACSIM_DCHECK (debug/verify builds) from common/types.hh so
#          release builds keep their invariants;
#        - #include <cassert> in src/, which would invite them back.
#
# Usage: scripts/lint.sh [build-dir]
#   build-dir (default: build) must contain compile_commands.json for
#   the clang-tidy pass; pass 1 is skipped if it is missing.
# Exits non-zero on any finding.

set -u
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
status=0

# ---------------------------------------------------------------- tidy --
if command -v clang-tidy >/dev/null 2>&1; then
    if [ -f "$build_dir/compile_commands.json" ]; then
        echo "== clang-tidy (compile db: $build_dir) =="
        mapfile -t sources < <(find "$repo_root/src" -name '*.cc' | sort)
        if ! clang-tidy -p "$build_dir" --quiet "${sources[@]}"; then
            status=1
        fi
    else
        echo "!! no compile_commands.json in $build_dir — run cmake first;" \
             "skipping clang-tidy pass"
    fi
else
    echo "== clang-tidy not installed — skipping tidy pass =="
fi

# ------------------------------------------------------- banned idioms --
echo "== banned-idiom scan (src/) =="

# Raw assert( — matched as a word so static_assert stays legal;
# comment-only lines (//, *) are exempt.
raw_asserts="$(grep -rnE '(^|[^_[:alnum:]])assert\(' "$repo_root/src" \
        --include='*.cc' --include='*.hh' |
    grep -vE '^[^:]+:[0-9]+:[[:space:]]*(//|\*)' || true)"
if [ -n "$raw_asserts" ]; then
    printf '%s\n' "$raw_asserts"
    echo "error: raw assert() in src/ — use TACSIM_CHECK / TACSIM_DCHECK" \
         "(common/types.hh)" >&2
    status=1
fi

if grep -rn '#include <cassert>' "$repo_root/src" \
        --include='*.cc' --include='*.hh'; then
    echo "error: <cassert> included in src/ — the TACSIM_CHECK macros" \
         "replace it" >&2
    status=1
fi

if [ "$status" -eq 0 ]; then
    echo "lint: clean"
else
    echo "lint: FINDINGS (see above)" >&2
fi
exit "$status"
