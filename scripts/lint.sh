#!/usr/bin/env bash
# Static-analysis gate for tacsim:
#   1. clang-tidy over src/ using .clang-tidy (skipped with a notice when
#      clang-tidy is not installed, so the script stays usable in
#      gcc-only containers).
#   2. tacsim-lint (tools/tacsim_lint.cc), the domain-aware analyzer:
#      magic-page-constant, nondeterminism-hazard, unsequenced-rng,
#      raw-assert, banned-include, hot-path-container and
#      stats-registry-coverage over src/, gated against the committed
#      (empty) baseline scripts/lint_baseline.txt. This replaced the old
#      grep-based banned-idiom scan; run
#      `tacsim-lint --list-checks` for the catalog and README.md
#      ("Correctness tooling") for suppression syntax.
#
# Usage: scripts/lint.sh [build-dir]
#   build-dir (default: build) must contain compile_commands.json for
#   the clang-tidy pass (pass 1 is skipped if it is missing) and is
#   where tacsim-lint is built if not already present.
# Exits non-zero on any finding.

set -u
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
status=0

# ---------------------------------------------------------------- tidy --
if command -v clang-tidy >/dev/null 2>&1; then
    if [ -f "$build_dir/compile_commands.json" ]; then
        echo "== clang-tidy (compile db: $build_dir) =="
        mapfile -t sources < <(find "$repo_root/src" -name '*.cc' | sort)
        if ! clang-tidy -p "$build_dir" --quiet "${sources[@]}"; then
            status=1
        fi
    else
        echo "!! no compile_commands.json in $build_dir — run cmake first;" \
             "skipping clang-tidy pass"
    fi
else
    echo "== clang-tidy not installed — skipping tidy pass =="
fi

# ---------------------------------------------------------- tacsim-lint --
echo "== tacsim-lint (src/) =="
lint_bin="$build_dir/tacsim-lint"
if [ ! -x "$lint_bin" ]; then
    if [ -f "$build_dir/CMakeCache.txt" ]; then
        cmake --build "$build_dir" --target tacsim-lint -j >/dev/null || {
            echo "error: failed to build tacsim-lint" >&2
            exit 2
        }
    else
        echo "error: $build_dir is not configured — run cmake first" >&2
        exit 2
    fi
fi
if ! "$lint_bin" --root "$repo_root" \
        --baseline "$repo_root/scripts/lint_baseline.txt" \
        "$repo_root/src"; then
    status=1
fi

if [ "$status" -eq 0 ]; then
    echo "lint: clean"
else
    echo "lint: FINDINGS (see above)" >&2
fi
exit "$status"
