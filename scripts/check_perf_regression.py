#!/usr/bin/env python3
"""Compare a candidate tacsim-perf report against a committed baseline.

Usage:
    scripts/check_perf_regression.py BASELINE.json CANDIDATE.json \
        [--tolerance FRACTION]

Both files must be tacsim-bench-v1 reports (the format tacsim-perf
writes). The gate is the *aggregate* events-per-second number: the
candidate fails if it is more than --tolerance (default 0.20, i.e. 20%)
below the baseline. Aggregate throughput is used instead of per-point
numbers because single points on shared CI runners are too noisy; the
aggregate averages over the full benchmark x config matrix.

The tolerance is deliberately overridable: when comparing runs from two
different machines (e.g. a laptop baseline against a CI candidate),
widen it or refresh the baseline on the target host first — see the
"Refreshing the perf baseline" section in README.md. When the two
reports' host metadata differ (cpu count, compiler, OS), an apparent
regression is most likely the machine, not the code, so the gate
downgrades to a warning instead of failing; pass --strict-host to keep
it fatal anyway.

Exit status: 0 on pass (including a host-mismatch downgrade), 1 on
regression, 3 when a report file is missing/unreadable, 4 when a report
file exists but is not a well-formed tacsim-bench-v1 report. The
missing/malformed split lets CI distinguish "the measurement step never
produced a report" (a pipeline problem) from "the report is corrupt or
from another tool" (a data problem) without scraping stderr.
"""

import argparse
import json
import sys

EXIT_REGRESSION = 1
EXIT_MISSING = 3
EXIT_MALFORMED = 4


def fail(code, message):
    print(message, file=sys.stderr)
    sys.exit(code)


def load_report(path):
    try:
        with open(path, encoding="utf-8") as f:
            body = f.read()
    except OSError as e:
        fail(EXIT_MISSING, f"error: cannot read report {path}: {e}")
    try:
        report = json.loads(body)
    except json.JSONDecodeError as e:
        fail(EXIT_MALFORMED, f"error: {path} is not valid JSON: {e}")
    if not isinstance(report, dict):
        fail(EXIT_MALFORMED, f"error: {path}: top level is not an object")
    if report.get("schema") != "tacsim-bench-v1":
        fail(EXIT_MALFORMED,
             f"error: {path}: expected schema tacsim-bench-v1, "
             f"got {report.get('schema')!r}")
    try:
        eps = float(report["aggregate"]["events_per_sec"])
    except (KeyError, TypeError, ValueError):
        fail(EXIT_MALFORMED,
             f"error: {path}: missing aggregate.events_per_sec")
    if eps <= 0:
        fail(EXIT_MALFORMED,
             f"error: {path}: non-positive aggregate throughput")
    return report, eps


def peak_rss_summary(report):
    """Max peak_rss_kb across points, or None if no point carries one.

    Older reports (and points that failed before sampling) have no
    peak_rss_kb field; the summary must degrade gracefully instead of
    raising KeyError.
    """
    values = []
    for p in report.get("points", []):
        rss = p.get("peak_rss_kb")
        if isinstance(rss, (int, float)) and rss > 0:
            values.append(rss)
    return max(values) if values else None


def format_rss(kb):
    return f"{kb / 1024:.1f} MiB" if kb is not None else "n/a"


def main():
    ap = argparse.ArgumentParser(
        description="Fail if candidate aggregate events/sec regresses "
                    "more than --tolerance below baseline.")
    ap.add_argument("baseline", help="committed baseline BENCH_perf.json")
    ap.add_argument("candidate", help="freshly measured BENCH_perf.json")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed fractional drop (default: 0.20)")
    ap.add_argument("--strict-host", action="store_true",
                    help="fail on regression even when the reports come "
                         "from different hosts (default: warn only)")
    args = ap.parse_args()

    if not 0 <= args.tolerance < 1:
        sys.exit("error: --tolerance must be in [0, 1)")

    base_report, base = load_report(args.baseline)
    cand_report, cand = load_report(args.candidate)

    failed_points = [p["key"] for p in cand_report.get("points", [])
                     if not p.get("ok", True)]
    if failed_points:
        sys.exit(f"error: candidate has failed points: {failed_points}")

    base_host = base_report.get("host", {})
    cand_host = cand_report.get("host", {})
    same_host = base_host == cand_host

    ratio = cand / base
    floor = 1.0 - args.tolerance
    print(f"baseline : {base:14.1f} events/sec "
          f"({base_host.get('os', 'unknown host')}, "
          f"peak RSS {format_rss(peak_rss_summary(base_report))})")
    print(f"candidate: {cand:14.1f} events/sec "
          f"({cand_host.get('os', 'unknown host')}, "
          f"peak RSS {format_rss(peak_rss_summary(cand_report))})")
    print(f"ratio    : {ratio:.3f} (floor {floor:.3f})")

    if not same_host:
        diffs = sorted(set(base_host) | set(cand_host))
        diffs = [k for k in diffs if base_host.get(k) != cand_host.get(k)]
        print(f"warning: reports come from different hosts "
              f"(differing: {', '.join(diffs) if diffs else 'metadata'}); "
              "throughput numbers are not directly comparable")

    if ratio < floor:
        drop = (1.0 - ratio) * 100
        message = (f"PERF REGRESSION: aggregate events/sec dropped "
                   f"{drop:.1f}% (> {args.tolerance * 100:.0f}% allowed). "
                   "If the slowdown is intentional and understood, refresh "
                   "the committed baseline (see README.md).")
        if same_host or args.strict_host:
            sys.exit(message)
        print(f"warning: {message}")
        print("warning: not failing because the baseline was measured on "
              "a different host; refresh it on this host or pass "
              "--strict-host to enforce the gate")
        return
    print("perf check passed")


if __name__ == "__main__":
    main()
