#!/usr/bin/env python3
"""Compare a candidate tacsim-perf report against a committed baseline.

Usage:
    scripts/check_perf_regression.py BASELINE.json CANDIDATE.json \
        [--tolerance FRACTION]

Both files must be tacsim-bench-v1 reports (the format tacsim-perf
writes). The gate is the *aggregate* events-per-second number: the
candidate fails if it is more than --tolerance (default 0.20, i.e. 20%)
below the baseline. Aggregate throughput is used instead of per-point
numbers because single points on shared CI runners are too noisy; the
aggregate averages over the full benchmark x config matrix.

The tolerance is deliberately overridable: when comparing runs from two
different machines (e.g. a laptop baseline against a CI candidate),
widen it or refresh the baseline on the target host first — see the
"Refreshing the perf baseline" section in README.md.

Exit status: 0 on pass, 1 on regression or malformed input.
"""

import argparse
import json
import sys


def load_report(path):
    try:
        with open(path, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    if report.get("schema") != "tacsim-bench-v1":
        sys.exit(f"error: {path}: expected schema tacsim-bench-v1, "
                 f"got {report.get('schema')!r}")
    try:
        eps = float(report["aggregate"]["events_per_sec"])
    except (KeyError, TypeError, ValueError):
        sys.exit(f"error: {path}: missing aggregate.events_per_sec")
    if eps <= 0:
        sys.exit(f"error: {path}: non-positive aggregate throughput")
    return report, eps


def main():
    ap = argparse.ArgumentParser(
        description="Fail if candidate aggregate events/sec regresses "
                    "more than --tolerance below baseline.")
    ap.add_argument("baseline", help="committed baseline BENCH_perf.json")
    ap.add_argument("candidate", help="freshly measured BENCH_perf.json")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed fractional drop (default: 0.20)")
    args = ap.parse_args()

    if not 0 <= args.tolerance < 1:
        sys.exit("error: --tolerance must be in [0, 1)")

    base_report, base = load_report(args.baseline)
    cand_report, cand = load_report(args.candidate)

    failed_points = [p["key"] for p in cand_report.get("points", [])
                     if not p.get("ok", True)]
    if failed_points:
        sys.exit(f"error: candidate has failed points: {failed_points}")

    ratio = cand / base
    floor = 1.0 - args.tolerance
    print(f"baseline : {base:14.1f} events/sec "
          f"({base_report.get('host', {}).get('os', 'unknown host')})")
    print(f"candidate: {cand:14.1f} events/sec "
          f"({cand_report.get('host', {}).get('os', 'unknown host')})")
    print(f"ratio    : {ratio:.3f} (floor {floor:.3f})")

    if ratio < floor:
        drop = (1.0 - ratio) * 100
        sys.exit(f"PERF REGRESSION: aggregate events/sec dropped "
                 f"{drop:.1f}% (> {args.tolerance * 100:.0f}% allowed). "
                 "If the slowdown is intentional and understood, refresh "
                 "the committed baseline (see README.md).")
    print("perf check passed")


if __name__ == "__main__":
    main()
