#!/usr/bin/env python3
"""Validate a Chrome-trace JSON file produced by obs::ChromeTracer.

Checks, stdlib only (CI's obs-smoke lane runs this on a short traced
simulation):

  - the file is well-formed JSON with a ``traceEvents`` array;
  - every event carries the keys its phase requires (``ph``, ``pid``,
    ``tid``, ``ts``; ``dur`` for complete events, ``args.value`` for
    counters, ``args.name`` for metadata);
  - timestamps are non-decreasing within each (pid, tid) track — the
    ordering obs::ChromeTracer::finish() sorts into and Perfetto's
    importer expects;
  - span durations are non-negative.

Exit 0 when valid (prints a one-line summary), 1 with a diagnostic on
the first problem found.
"""

import json
import sys


def fail(msg: str) -> "NoReturn":
    print(f"validate_chrome_trace: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: validate_chrome_trace.py TRACE.json")
    path = sys.argv[1]

    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        fail(f"{path}: cannot read: {e}")
    except json.JSONDecodeError as e:
        fail(f"{path}: not well-formed JSON: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: missing traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(f"{path}: traceEvents is not an array")

    last_ts = {}  # (pid, tid) -> last timestamp seen on that track
    counts = {"M": 0, "X": 0, "C": 0, "i": 0}
    for n, e in enumerate(events):
        where = f"{path}: traceEvents[{n}]"
        if not isinstance(e, dict):
            fail(f"{where}: event is not an object")
        ph = e.get("ph")
        if ph not in counts:
            fail(f"{where}: unknown phase {ph!r}")
        counts[ph] += 1
        for key in ("pid", "tid", "name"):
            if key not in e:
                fail(f"{where}: missing {key!r}")
        if ph == "M":
            if not isinstance(e.get("args"), dict) or "name" not in e["args"]:
                fail(f"{where}: metadata event missing args.name")
            continue
        ts = e.get("ts")
        if not isinstance(ts, (int, float)):
            fail(f"{where}: missing numeric ts")
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)):
                fail(f"{where}: complete event missing numeric dur")
            if dur < 0:
                fail(f"{where}: negative duration {dur}")
        if ph == "C":
            args = e.get("args")
            if not isinstance(args, dict) or not any(
                isinstance(v, (int, float)) for v in args.values()
            ):
                fail(f"{where}: counter event missing numeric args value")
        track = (e["pid"], e["tid"])
        if ts < last_ts.get(track, 0):
            fail(
                f"{where}: ts {ts} decreases on track pid={track[0]} "
                f"tid={track[1]} (previous {last_ts[track]})"
            )
        last_ts[track] = ts

    dropped = doc.get("tacsimDroppedEvents", 0)
    if dropped:
        fail(f"{path}: {dropped} events dropped past the buffer cap")

    print(
        f"{path}: OK ({len(events)} events on {len(last_ts)} tracks: "
        f"{counts['X']} spans, {counts['C']} counters, "
        f"{counts['i']} instants, {counts['M']} metadata)"
    )


if __name__ == "__main__":
    main()
