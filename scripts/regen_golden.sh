#!/usr/bin/env bash
# Regenerate the golden-run snapshots under tests/golden/.
#
# Usage: scripts/regen_golden.sh [build-dir]
#   build-dir (default: build) is configured if needed, built, and the
#   golden test binary is run with TACSIM_REGEN_GOLDEN=1, which rewrites
#   the snapshot files in the source tree instead of comparing.
#
# Review the resulting `git diff tests/golden` before committing: every
# changed field is a deliberate behavior change you are signing off on.

set -euo pipefail
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

if [ ! -f "$build_dir/CMakeCache.txt" ]; then
    cmake -B "$build_dir" -S "$repo_root"
fi
cmake --build "$build_dir" --target tacsim_golden_tests -j

TACSIM_REGEN_GOLDEN=1 "$build_dir/tests/tacsim_golden_tests"

echo
echo "Golden snapshots regenerated. Review with: git diff tests/golden"
