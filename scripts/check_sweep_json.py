#!/usr/bin/env python3
"""Validate a tacsim-sweep-v1 JSON report (the format the bench
binaries write via TACSIM_JSON_OUT).

Usage:
    scripts/check_sweep_json.py REPORT.json [--min-points N]
        [--require-ok] [--require-topology]

Checks, in order:
  * the file parses as JSON and carries schema "tacsim-sweep-v1";
  * the top level has the expected fields (title, jobs, points, rows,
    runs) with the expected types;
  * every run entry has the per-run metadata fields (key, point_key,
    benchmark, topology, instructions, warmup, seed, ok, cached,
    wall_ms, cycles, ipc, error), keys are unique, and point_key is 64
    lowercase hex chars (or "" for custom jobs);
  * every row entry has series/label/measured/paper/unit;
  * --min-points N: at least N run entries (a combinatorial sweep that
    silently registered nothing still writes a well-formed report —
    this catches that);
  * --require-ok: every run succeeded (ok == true, error == null);
  * --require-topology: every run built from a config path carries a
    nonempty canonical topology spec (custom jobs are exempt only when
    their key starts with "custom/").

Exit status: 0 on pass, 1 on a failed content check, 3 when the report
is missing/unreadable, 4 when it exists but is malformed (bad JSON,
wrong schema, missing fields). The missing/malformed split mirrors
check_perf_regression.py so CI can tell "the bench never wrote a
report" from "the report is corrupt".
"""

import argparse
import json
import sys

EXIT_FAILED = 1
EXIT_MISSING = 3
EXIT_MALFORMED = 4

RUN_FIELDS = {
    "key": str,
    "point_key": str,
    "benchmark": str,
    "topology": str,
    "instructions": int,
    "warmup": int,
    "seed": int,
    "ok": bool,
    "cached": bool,
    "wall_ms": (int, float),
    "cycles": int,
    "ipc": (int, float, type(None)),
    "error": (str, type(None)),
}

ROW_FIELDS = {
    "series": str,
    "label": str,
    "measured": (int, float, type(None)),
    "paper": (int, float, type(None)),
    "unit": str,
}


def fail(code, message):
    print(message, file=sys.stderr)
    sys.exit(code)


def malformed(path, what):
    fail(EXIT_MALFORMED, f"error: {path}: {what}")


def check_fields(path, kind, index, entry, spec):
    if not isinstance(entry, dict):
        malformed(path, f"{kind}[{index}] is not an object")
    for field, types in spec.items():
        if field not in entry:
            malformed(path, f"{kind}[{index}] is missing '{field}'")
        if not isinstance(entry[field], types):
            malformed(
                path,
                f"{kind}[{index}].{field} has type "
                f"{type(entry[field]).__name__}, expected "
                f"{types if isinstance(types, type) else types}",
            )


def main():
    ap = argparse.ArgumentParser(
        description="Validate a tacsim-sweep-v1 JSON report.")
    ap.add_argument("report", help="JSON file written via TACSIM_JSON_OUT")
    ap.add_argument("--min-points", type=int, default=1,
                    help="minimum number of run entries (default: 1)")
    ap.add_argument("--require-ok", action="store_true",
                    help="fail if any run entry failed")
    ap.add_argument("--require-topology", action="store_true",
                    help="fail if any non-custom run lacks a topology "
                         "spec")
    args = ap.parse_args()

    try:
        with open(args.report, encoding="utf-8") as f:
            body = f.read()
    except OSError as e:
        fail(EXIT_MISSING, f"error: cannot read report {args.report}: {e}")
    try:
        report = json.loads(body)
    except json.JSONDecodeError as e:
        malformed(args.report, f"not valid JSON: {e}")

    if not isinstance(report, dict):
        malformed(args.report, "top level is not an object")
    if report.get("schema") != "tacsim-sweep-v1":
        malformed(args.report,
                  f"expected schema tacsim-sweep-v1, "
                  f"got {report.get('schema')!r}")
    for field, types in (("title", str), ("jobs", int), ("points", int),
                         ("rows", list), ("runs", list)):
        if not isinstance(report.get(field), types):
            malformed(args.report, f"missing or mistyped '{field}'")

    runs = report["runs"]
    seen_keys = set()
    for i, run in enumerate(runs):
        check_fields(args.report, "runs", i, run, RUN_FIELDS)
        if run["key"] in seen_keys:
            malformed(args.report, f"duplicate run key {run['key']!r}")
        seen_keys.add(run["key"])
        # ok and error must agree: a failed run explains itself.
        if not run["ok"] and not run["error"]:
            malformed(args.report,
                      f"run {run['key']!r} failed without an error")
        # point_key is the canonical content hash: 64 lowercase hex
        # chars, or "" for custom jobs whose behavior the runner cannot
        # hash.
        pk = run["point_key"]
        if pk and (len(pk) != 64
                   or any(c not in "0123456789abcdef" for c in pk)):
            malformed(args.report,
                      f"run {run['key']!r} has a malformed point_key "
                      f"{pk!r} (want 64 lowercase hex chars or \"\")")

    for i, row in enumerate(report["rows"]):
        check_fields(args.report, "rows", i, row, ROW_FIELDS)

    if len(runs) < args.min_points:
        fail(EXIT_FAILED,
             f"error: {args.report}: only {len(runs)} run(s), "
             f"expected at least {args.min_points}")

    if args.require_ok:
        failed = [r["key"] for r in runs if not r["ok"]]
        if failed:
            for r in runs:
                if not r["ok"]:
                    print(f"  {r['key']}: {r['error']}", file=sys.stderr)
            fail(EXIT_FAILED,
                 f"error: {args.report}: {len(failed)} failed run(s): "
                 f"{failed}")

    if args.require_topology:
        missing = [r["key"] for r in runs
                   if not r["topology"]
                   and not r["key"].startswith("custom/")]
        if missing:
            fail(EXIT_FAILED,
                 f"error: {args.report}: runs without a topology spec: "
                 f"{missing}")

    ok = sum(1 for r in runs if r["ok"])
    print(f"sweep check passed: {len(runs)} run(s) ({ok} ok), "
          f"{len(report['rows'])} row(s), schema tacsim-sweep-v1")


if __name__ == "__main__":
    main()
